"""User-facing messaging API.

:class:`MessageInjector` is the per-node endpoint through which
application code submits individual best-effort and non-real-time
messages into a running simulation (periodic guaranteed traffic comes
from admitted connections instead).  Submissions are released at the
start of the next simulated slot, mirroring hardware where a message
handed to the transceiver enters arbitration at the next collection
phase.

:class:`ConnectionClient` models the runtime connection-management
dialogue of Section 6: requests to open or close a logical real-time
connection travel to the designated admission-control node as
best-effort messages; the decision comes back the same way.  The client
accounts for that round-trip (2 best-effort messages) before a
connection's traffic may start flowing.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.connection import LogicalRealTimeConnection
from repro.core.messages import Message, MessageStatus
from repro.core.priorities import TrafficClass
from repro.sim.engine import Simulation
from repro.traffic.base import TrafficSource
from repro.traffic.periodic import ConnectionSource


@dataclass
class _Submission:
    destinations: frozenset[int]
    traffic_class: TrafficClass
    size_slots: int
    relative_deadline_slots: int | None
    #: Filled in once the message object is created at release time.
    message: Message | None = None

    @property
    def delivered(self) -> bool:
        return (
            self.message is not None
            and self.message.status is MessageStatus.DELIVERED
        )


class MessageInjector(TrafficSource):
    """Per-node endpoint for submitting individual messages.

    Create one per node, pass it to the simulation's sources, then call
    :meth:`submit` at any time; the message is released at the next slot
    boundary.  The returned handle exposes the delivery status.
    """

    def __init__(self, node: int):
        self.node = node
        self._pending: list[_Submission] = []

    def submit(
        self,
        destinations: Iterable[int],
        traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
        size_slots: int = 1,
        relative_deadline_slots: int | None = None,
    ) -> _Submission:
        """Queue a message for release at the next slot.

        Best-effort messages require a relative deadline (their priority
        encodes laxity); non-real-time messages must not carry one.
        """
        if traffic_class is TrafficClass.RT_CONNECTION:
            raise ValueError(
                "guaranteed traffic flows through admitted connections, "
                "not through the injector"
            )
        if traffic_class is TrafficClass.BEST_EFFORT:
            if relative_deadline_slots is None or relative_deadline_slots < 1:
                raise ValueError(
                    "best-effort messages need a positive relative deadline"
                )
        elif relative_deadline_slots is not None:
            raise ValueError("non-real-time messages carry no deadline")
        sub = _Submission(
            destinations=frozenset(destinations),
            traffic_class=traffic_class,
            size_slots=size_slots,
            relative_deadline_slots=relative_deadline_slots,
        )
        self._pending.append(sub)
        return sub

    def messages_for_slot(self, slot: int) -> list[Message]:
        released = []
        for sub in self._pending:
            deadline = (
                slot + sub.relative_deadline_slots
                if sub.relative_deadline_slots is not None
                else None
            )
            msg = Message(
                source=self.node,
                destinations=sub.destinations,
                traffic_class=sub.traffic_class,
                size_slots=sub.size_slots,
                created_slot=slot,
                deadline_slot=deadline,
            )
            sub.message = msg
            released.append(msg)
        self._pending.clear()
        return released


class ConnectionClient:
    """Runtime connection set-up/tear-down through the admission node.

    Section 6: a designated node runs admission control; nodes talk to it
    via the best-effort service.  This client sends the request as a
    best-effort message from the connection's source to the admission
    node, applies the admission test on arrival, sends the reply back,
    and only then (on acceptance) activates the connection's periodic
    source.

    Drives the supplied simulation while waiting, so the signalling cost
    is measured in real network slots.
    """

    #: Relative deadline for signalling messages (best-effort class).
    SIGNALLING_DEADLINE_SLOTS = 64

    def __init__(
        self,
        sim: Simulation,
        controller: AdmissionController,
        admission_node: int,
        injectors: dict[int, MessageInjector],
    ):
        n = sim.topology.n_nodes
        if not (0 <= admission_node < n):
            raise ValueError(
                f"admission node {admission_node} out of range for N={n}"
            )
        self.sim = sim
        self.controller = controller
        self.admission_node = admission_node
        self.injectors = injectors

    def _await_delivery(self, submission: _Submission, max_slots: int) -> int:
        """Step the simulation until the message is delivered."""
        start = self.sim.current_slot
        while not submission.delivered:
            if self.sim.current_slot - start >= max_slots:
                raise TimeoutError(
                    "signalling message not delivered within "
                    f"{max_slots} slots"
                )
            self.sim.step()
        return self.sim.current_slot - start

    def open(
        self,
        connection: LogicalRealTimeConnection,
        max_wait_slots: int = 10_000,
    ) -> tuple[AdmissionDecision, int]:
        """Request admission of a connection; activate it if accepted.

        Returns the admission decision and the number of slots the whole
        signalling round-trip took.  If the requesting node *is* the
        admission node, the test is local and costs nothing.
        """
        used = 0
        src = connection.source
        if src != self.admission_node:
            req = self.injectors[src].submit(
                destinations=[self.admission_node],
                traffic_class=TrafficClass.BEST_EFFORT,
                relative_deadline_slots=self.SIGNALLING_DEADLINE_SLOTS,
            )
            used += self._await_delivery(req, max_wait_slots)

        decision = self.controller.request(connection)

        if src != self.admission_node:
            reply = self.injectors[self.admission_node].submit(
                destinations=[src],
                traffic_class=TrafficClass.BEST_EFFORT,
                relative_deadline_slots=self.SIGNALLING_DEADLINE_SLOTS,
            )
            used += self._await_delivery(reply, max_wait_slots)

        if decision.accepted:
            # Activate the periodic source from the next slot on.
            self.sim.sources = self.sim.sources + (
                ConnectionSource(connection, active_from=self.sim.current_slot),
            )
        return decision, used

    def close(self, connection_id: int, max_wait_slots: int = 10_000) -> int:
        """Tear a connection down; returns the signalling cost in slots.

        The connection's source stops releasing from the current slot on
        (its :class:`ConnectionSource` is deactivated) and the admission
        set is updated.
        """
        connection = self.controller.remove(connection_id)
        used = 0
        if connection.source != self.admission_node:
            req = self.injectors[connection.source].submit(
                destinations=[self.admission_node],
                traffic_class=TrafficClass.BEST_EFFORT,
                relative_deadline_slots=self.SIGNALLING_DEADLINE_SLOTS,
            )
            used = self._await_delivery(req, max_wait_slots)
        # Deactivate the periodic source.
        new_sources = []
        for src in self.sim.sources:
            if (
                isinstance(src, ConnectionSource)
                and src.connection.connection_id == connection_id
            ):
                continue
            new_sources.append(src)
        self.sim.sources = tuple(new_sources)
        return used
