"""User-facing messaging API.

:class:`MessageInjector` is the per-node endpoint through which
application code submits individual best-effort and non-real-time
messages into a running simulation (periodic guaranteed traffic comes
from admitted connections instead).  Submissions are released at the
start of the next simulated slot, mirroring hardware where a message
handed to the transceiver enters arbitration at the next collection
phase.

:class:`ConnectionClient` models the runtime connection-management
dialogue of Section 6: requests to open or close a logical real-time
connection travel to the designated admission-control node as
best-effort messages; the decision comes back the same way.  The client
accounts for that round-trip (2 best-effort messages) before a
connection's traffic may start flowing.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.connection import LogicalRealTimeConnection
from repro.core.messages import Message, MessageStatus
from repro.core.priorities import TrafficClass
from repro.sim.engine import Simulation
from repro.traffic.base import TrafficSource
from repro.traffic.periodic import ConnectionSource


@dataclass
class _Submission:
    destinations: frozenset[int]
    traffic_class: TrafficClass
    size_slots: int
    relative_deadline_slots: int | None
    #: Filled in once the message object is created at release time.
    message: Message | None = None

    @property
    def delivered(self) -> bool:
        return (
            self.message is not None
            and self.message.status is MessageStatus.DELIVERED
        )


class MessageInjector(TrafficSource):
    """Per-node endpoint for submitting individual messages.

    Create one per node, pass it to the simulation's sources, then call
    :meth:`submit` at any time; the message is released at the next slot
    boundary.  The returned handle exposes the delivery status.
    """

    def __init__(self, node: int):
        self.node = node
        self._pending: list[_Submission] = []

    def submit(
        self,
        destinations: Iterable[int],
        traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
        size_slots: int = 1,
        relative_deadline_slots: int | None = None,
    ) -> _Submission:
        """Queue a message for release at the next slot.

        Best-effort messages require a relative deadline (their priority
        encodes laxity); non-real-time messages must not carry one.
        """
        if traffic_class is TrafficClass.RT_CONNECTION:
            raise ValueError(
                "guaranteed traffic flows through admitted connections, "
                "not through the injector"
            )
        if traffic_class is TrafficClass.BEST_EFFORT:
            if relative_deadline_slots is None or relative_deadline_slots < 1:
                raise ValueError(
                    "best-effort messages need a positive relative deadline"
                )
        elif relative_deadline_slots is not None:
            raise ValueError("non-real-time messages carry no deadline")
        sub = _Submission(
            destinations=frozenset(destinations),
            traffic_class=traffic_class,
            size_slots=size_slots,
            relative_deadline_slots=relative_deadline_slots,
        )
        self._pending.append(sub)
        return sub

    def messages_for_slot(self, slot: int) -> list[Message]:
        released = []
        for sub in self._pending:
            deadline = (
                slot + sub.relative_deadline_slots
                if sub.relative_deadline_slots is not None
                else None
            )
            msg = Message(
                source=self.node,
                destinations=sub.destinations,
                traffic_class=sub.traffic_class,
                size_slots=sub.size_slots,
                created_slot=slot,
                deadline_slot=deadline,
            )
            sub.message = msg
            released.append(msg)
        self._pending.clear()
        return released


@dataclass(frozen=True)
class SignallingResult:
    """Outcome of one Section 6 connection-management dialogue.

    Open and close report the same shape: the admission decision (always
    present on open; ``None`` on close, which cannot be refused), the
    number of network slots the signalling consumed, and how many
    request/reply round-trips were performed (``0`` when the requesting
    node *is* the admission node, ``1`` otherwise -- each round-trip is
    2 best-effort messages).
    """

    decision: AdmissionDecision | None
    slots_used: int
    round_trips: int

    @property
    def accepted(self) -> bool:
        """True when there is no decision to refuse, or it accepted."""
        return self.decision is None or self.decision.accepted

    @property
    def messages_sent(self) -> int:
        """Best-effort signalling messages the dialogue consumed."""
        return 2 * self.round_trips


class ConnectionClient:
    """Runtime connection set-up/tear-down through the admission node.

    Section 6: a designated node runs admission control; nodes talk to it
    via the best-effort service.  This client sends the request as a
    best-effort message from the connection's source to the admission
    node, applies the admission test on arrival, sends the reply back,
    and only then (on acceptance) activates the connection's periodic
    source.  Tear-down runs the same 2-message dialogue in reverse.

    Drives the supplied simulation while waiting, so the signalling cost
    is measured in real network slots.  :meth:`open_connection` and
    :meth:`close_connection` return a symmetric
    :class:`SignallingResult`; the older :meth:`open`/:meth:`close`
    return the historic ``(decision, slots)`` tuple / bare ``int`` and
    emit a :class:`DeprecationWarning`.
    """

    #: Relative deadline for signalling messages (best-effort class).
    SIGNALLING_DEADLINE_SLOTS = 64

    def __init__(
        self,
        sim: Simulation,
        controller: AdmissionController,
        admission_node: int,
        injectors: dict[int, MessageInjector],
    ):
        n = sim.topology.n_nodes
        if not (0 <= admission_node < n):
            raise ValueError(
                f"admission node {admission_node} out of range for N={n}"
            )
        self.sim = sim
        self.controller = controller
        self.admission_node = admission_node
        self.injectors = injectors

    def _await_delivery(self, submission: _Submission, max_slots: int) -> int:
        """Step the simulation until the message is delivered."""
        start = self.sim.current_slot
        while not submission.delivered:
            if self.sim.current_slot - start >= max_slots:
                raise TimeoutError(
                    "signalling message not delivered within "
                    f"{max_slots} slots"
                )
            self.sim.step()
        return self.sim.current_slot - start

    def _signal(self, src: int, dst: int, max_slots: int) -> int:
        """One best-effort signalling leg from ``src`` to ``dst``."""
        leg = self.injectors[src].submit(
            destinations=[dst],
            traffic_class=TrafficClass.BEST_EFFORT,
            relative_deadline_slots=self.SIGNALLING_DEADLINE_SLOTS,
        )
        return self._await_delivery(leg, max_slots)

    def open_connection(
        self,
        connection: LogicalRealTimeConnection,
        max_wait_slots: int = 10_000,
    ) -> SignallingResult:
        """Request admission of a connection; activate it if accepted.

        Runs the full request/reply dialogue (2 best-effort messages)
        unless the requesting node *is* the admission node, where the
        test is local and costs nothing.
        """
        used = 0
        round_trips = 0
        src = connection.source
        if src != self.admission_node:
            used += self._signal(src, self.admission_node, max_wait_slots)

        decision = self.controller.request(connection)

        if src != self.admission_node:
            used += self._signal(self.admission_node, src, max_wait_slots)
            round_trips = 1

        if decision.accepted:
            # Activate the periodic source from the next slot on.
            self.sim.sources = self.sim.sources + (
                ConnectionSource(connection, active_from=self.sim.current_slot),
            )
        return SignallingResult(
            decision=decision, slots_used=used, round_trips=round_trips
        )

    def close_connection(
        self, connection_id: int, max_wait_slots: int = 10_000
    ) -> SignallingResult:
        """Tear a connection down; the symmetric 2-message dialogue.

        The tear-down request travels to the admission node as a
        best-effort message, the admission set is updated there, the
        connection's periodic source is deactivated, and the
        acknowledgement travels back -- the same round-trip shape as
        :meth:`open_connection`, so open and close signalling costs are
        directly comparable.
        """
        connection = self.controller.remove(connection_id)
        used = 0
        round_trips = 0
        src = connection.source
        if src != self.admission_node:
            used += self._signal(src, self.admission_node, max_wait_slots)
        # Deactivate the periodic source before awaiting the reply, so
        # no guaranteed traffic is released after the request arrived.
        self.sim.sources = tuple(
            s
            for s in self.sim.sources
            if not (
                isinstance(s, ConnectionSource)
                and s.connection.connection_id == connection_id
            )
        )
        if src != self.admission_node:
            used += self._signal(self.admission_node, src, max_wait_slots)
            round_trips = 1
        return SignallingResult(
            decision=None, slots_used=used, round_trips=round_trips
        )

    # -- deprecated pre-1.1 API ----------------------------------------

    def open(
        self,
        connection: LogicalRealTimeConnection,
        max_wait_slots: int = 10_000,
    ) -> tuple[AdmissionDecision, int]:
        """Deprecated: use :meth:`open_connection`.

        Returns the historic ``(decision, slots_used)`` tuple.
        """
        warnings.warn(
            "ConnectionClient.open() is deprecated; use open_connection(), "
            "which returns a SignallingResult",
            DeprecationWarning,
            stacklevel=2,
        )
        result = self.open_connection(connection, max_wait_slots)
        return result.decision, result.slots_used

    def close(self, connection_id: int, max_wait_slots: int = 10_000) -> int:
        """Deprecated: use :meth:`close_connection`.

        Returns the historic bare slot count.  Note the modelled
        dialogue now includes the acknowledgement leg the docstring
        always promised, so the count covers the full round-trip.
        """
        warnings.warn(
            "ConnectionClient.close() is deprecated; use close_connection(), "
            "which returns a SignallingResult",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.close_connection(connection_id, max_wait_slots).slots_used
