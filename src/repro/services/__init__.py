"""User services on top of the MAC (Sections 1 and 7, refs [4][11]).

* :mod:`repro.services.api` -- per-node message submission endpoints and
  the connection-management client that talks to the admission
  controller;
* :mod:`repro.services.barrier` -- barrier synchronisation;
* :mod:`repro.services.reduction` -- global reduction (all-reduce);
* :mod:`repro.services.reliable` -- reliable transmission: packet loss,
  acknowledgement piggybacking, and retransmission accounting;
* :mod:`repro.services.flowcontrol` -- the flow-control half of reliable
  transmission: credit-windowed senders against finite receive buffers;
* :mod:`repro.services.shortmsg` -- the short-message service riding the
  control channel's extension fields.
"""

from repro.services.api import ConnectionClient, MessageInjector
from repro.services.barrier import BarrierCoordinator, BarrierResult
from repro.services.flowcontrol import ReceiverBuffer, WindowedSender
from repro.services.reduction import GlobalReduction, ReductionResult
from repro.services.reliable import PacketLossModel, ReliableStats
from repro.services.shortmsg import ShortMessage, ShortMessageService

__all__ = [
    "ConnectionClient",
    "MessageInjector",
    "BarrierCoordinator",
    "BarrierResult",
    "ReceiverBuffer",
    "WindowedSender",
    "GlobalReduction",
    "ReductionResult",
    "PacketLossModel",
    "ReliableStats",
    "ShortMessage",
    "ShortMessageService",
]
