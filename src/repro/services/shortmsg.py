"""The short-message service on the control channel.

The paper lists "short messages" among the services for parallel and
distributed systems (Sections 1 and 7; ref. [11] describes them riding
the control channel).  The distribution-phase packet carries extension
fields beyond the arbitration result (Figure 5: "other fields ...
acknowledgement for transmission etc."); a fixed budget of those bits
per slot can carry small payloads -- flags, counters, scalars -- without
ever consuming a data slot.

:class:`ShortMessageService` models that budget: a global FIFO of short
messages, drained at ``capacity_bits`` per slot.  Because the control
channel is broadcast (every node reads the distribution packet), every
short message is implicitly a broadcast with per-destination filtering.
Step it alongside the simulation to measure delivery latencies under a
given bit budget, and use :meth:`extension_bits` to account for the
control-packet growth in the Equation (2) minimum slot length.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field

_shortmsg_ids = itertools.count()


@dataclass
class ShortMessage:
    """One short payload queued on the control channel."""

    source: int
    destination: int
    payload_bits: int
    submitted_slot: int
    msg_id: int = field(default_factory=lambda: next(_shortmsg_ids))
    #: Slot whose distribution packet completed this message (set on
    #: delivery).
    delivered_slot: int | None = None

    def __post_init__(self) -> None:
        if self.payload_bits < 1:
            raise ValueError(
                f"payload must be at least 1 bit, got {self.payload_bits}"
            )
        if self.submitted_slot < 0:
            raise ValueError(
                f"submitted slot must be non-negative, got {self.submitted_slot}"
            )

    @property
    def latency_slots(self) -> int | None:
        """Slots from submission to delivery (``None`` while queued)."""
        if self.delivered_slot is None:
            return None
        return self.delivered_slot - self.submitted_slot + 1


class ShortMessageService:
    """FIFO short-message delivery over the distribution packet's
    extension bits.

    Parameters
    ----------
    capacity_bits:
        Extension bits available per slot for short-message payloads
        (plus per-message addressing overhead, see ``header_bits``).
    header_bits:
        Fixed per-message overhead (source/destination addressing and
        length); defaults to 16, generous for rings up to 256 nodes.
    """

    def __init__(self, capacity_bits: int = 64, header_bits: int = 16):
        if capacity_bits < 1:
            raise ValueError(f"capacity must be >= 1 bit, got {capacity_bits}")
        if header_bits < 0:
            raise ValueError(f"header bits must be non-negative, got {header_bits}")
        if header_bits >= capacity_bits:
            raise ValueError(
                f"per-slot capacity ({capacity_bits} bits) cannot even fit "
                f"one message header ({header_bits} bits)"
            )
        self.capacity_bits = capacity_bits
        self.header_bits = header_bits
        self._queue: deque[tuple[ShortMessage, int]] = deque()
        self.delivered: list[ShortMessage] = []

    # ------------------------------------------------------------------

    @property
    def extension_bits(self) -> int:
        """Distribution-packet growth this service implies (Figure 5)."""
        return self.capacity_bits

    def submit(
        self, source: int, destination: int, payload_bits: int, slot: int
    ) -> ShortMessage:
        """Queue a short message at ``slot``."""
        msg = ShortMessage(
            source=source,
            destination=destination,
            payload_bits=payload_bits,
            submitted_slot=slot,
        )
        self._queue.append((msg, payload_bits + self.header_bits))
        return msg

    def step(self, slot: int) -> list[ShortMessage]:
        """Drain up to ``capacity_bits`` from the queue for this slot.

        A message larger than one slot's budget is fragmented across
        consecutive slots (its header is paid once).  Returns the
        messages completed this slot.
        """
        budget = self.capacity_bits
        completed: list[ShortMessage] = []
        while self._queue and budget > 0:
            msg, remaining = self._queue[0]
            took = min(budget, remaining)
            budget -= took
            remaining -= took
            if remaining == 0:
                self._queue.popleft()
                msg.delivered_slot = slot
                completed.append(msg)
                self.delivered.append(msg)
            else:
                self._queue[0] = (msg, remaining)
        return completed

    @property
    def backlog(self) -> int:
        """Messages still queued (including a partially sent head)."""
        return len(self._queue)
