"""Global reduction (all-reduce) service.

The second group-communication service the paper lists (Sections 1 and
7; ref. [11]).  On a unidirectional pipeline ring the natural algorithm
is a **pipelined ring reduction**:

1. **reduce phase** -- the value travels the ring once: each participant
   combines its local contribution into the partial result and forwards
   it to the next participant downstream (``k - 1`` single-slot messages
   for ``k`` participants);
2. **broadcast phase** -- the last participant holds the full result and
   multicasts it back to all others (one message).

Because consecutive hops occupy disjoint segments, step ``i + 1`` of the
reduce phase can ride the spatial reuse left free by other traffic; the
measured cost under background load is exactly what experiment S7
quantifies.  The reduction actually computes the value (with a real
operator) so tests can assert numerical correctness, not just timing.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

from repro.core.priorities import TrafficClass
from repro.services.api import MessageInjector
from repro.sim.engine import Simulation


@dataclass(frozen=True, slots=True)
class ReductionResult:
    """Measured cost and computed value of one global reduction."""

    start_slot: int
    end_slot: int
    n_participants: int
    #: The reduced value, combined in ring order.
    value: object

    @property
    def slots(self) -> int:
        """Reduction completion time in slots."""
        return self.end_slot - self.start_slot


class GlobalReduction:
    """Runs pipelined ring reductions over a running simulation."""

    def __init__(
        self,
        sim: Simulation,
        injectors: dict[int, MessageInjector],
        deadline_slots: int = 64,
    ):
        if deadline_slots < 1:
            raise ValueError(f"deadline must be >= 1 slot, got {deadline_slots}")
        self.sim = sim
        self.injectors = injectors
        self.deadline_slots = deadline_slots

    def execute(
        self,
        contributions: Mapping[int, object],
        operator: Callable[[object, object], object],
        max_slots: int = 100_000,
    ) -> ReductionResult:
        """All-reduce ``contributions`` with ``operator``.

        ``contributions`` maps participant node -> local value.  The
        reduction proceeds in ring order starting from the lowest
        participating node id; the final holder broadcasts the result.
        """
        nodes = sorted(contributions.keys())
        if len(nodes) < 2:
            raise ValueError("a reduction needs at least 2 participants")
        for node in nodes:
            if node not in self.injectors:
                raise ValueError(f"no injector for participant node {node}")

        start = self.sim.current_slot

        # Reduce phase: hop participant -> next participant in id order.
        value = contributions[nodes[0]]
        for i in range(len(nodes) - 1):
            src, dst = nodes[i], nodes[i + 1]
            hop = self.injectors[src].submit(
                destinations=[dst],
                traffic_class=TrafficClass.BEST_EFFORT,
                relative_deadline_slots=self.deadline_slots,
            )
            while not hop.delivered:
                if self.sim.current_slot - start >= max_slots:
                    raise TimeoutError(
                        f"reduction hop {src}->{dst} incomplete after "
                        f"{max_slots} slots"
                    )
                self.sim.step()
            value = operator(value, contributions[dst])

        # Broadcast phase: the last participant multicasts the result.
        last = nodes[-1]
        others = [n for n in nodes if n != last]
        bcast = self.injectors[last].submit(
            destinations=others,
            traffic_class=TrafficClass.BEST_EFFORT,
            relative_deadline_slots=self.deadline_slots,
        )
        while not bcast.delivered:
            if self.sim.current_slot - start >= max_slots:
                raise TimeoutError(
                    f"reduction broadcast incomplete after {max_slots} slots"
                )
            self.sim.step()

        return ReductionResult(
            start_slot=start,
            end_slot=self.sim.current_slot,
            n_participants=len(nodes),
            value=value,
        )
