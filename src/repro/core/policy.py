"""Pluggable arbitration policies -- the scheduler zoo.

The paper argues the ring's control channel gives *inherent* support for
EDF, but never publishes the promised comparison against conventional
policies.  This module makes the arbitration policy pluggable so that
comparison can be run: a :class:`SchedulingPolicy` decides (a) how a
node orders its local transmit queue and (b) how the head message's
urgency is *encoded into the 5-bit Table 1 priority field* that the
collection/distribution arbitration sorts on.  The MAC machinery --
request composition, the two-phase TCMA sweep, clock hand-over -- is
policy-agnostic: it always grants the numerically highest field value.

Three policies ship:

``edf``
    The paper's policy: the message laxity is compressed through a
    :class:`~repro.core.mapping.LaxityMapping` (logarithmic by default).
    Laxity-table ablations are expressed as alternative mappings via
    :attr:`~repro.sim.runner.RunOptions.mapping`, not as separate
    policies.
``rm``
    Rate monotonic: the priority field encodes the *rate* of the
    releasing connection -- a static ``log2`` bucket of the period, so a
    shorter period always outranks a longer one (up to the bucket
    quantisation; ties resolve by ring position, the usual static
    tie-break).  Deadline-bearing messages without a period (sporadic
    best-effort traffic) fall back to their relative deadline, i.e.
    deadline-monotonic, the natural RM generalisation.
``fifo``
    First-in-first-out: the priority field encodes *release order* as a
    ``log2`` bucket of the message age, so older messages outrank newer
    ones.  Exact global FIFO cannot fit a 5-bit field; the encoding is
    FIFO up to the bucket quantisation, which is the honest analogue of
    what a priority-field MAC can express.

Both static encoders saturate after :data:`RM_PERIOD_HORIZON_LOG2` /
:data:`FIFO_AGE_HORIZON_LOG2` doublings.  Those constants are
load-bearing: each must equal the width of the Table 1 class bands
(``hi - lo``, 14 levels for both deadline classes) or an encoded level
would leave its class band and break the strict class precedence.  The
``priority-domain`` lint rule checks them statically against
``core.priorities``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.core.mapping import LaxityMapping
from repro.core.messages import Message
from repro.core.priorities import TrafficClass, class_priority_range

#: ``log2`` saturation horizon of the RM period encoder: periods up to
#: ``2**(RM_PERIOD_HORIZON_LOG2 + 1) - 1`` slots get distinct rate
#: levels; longer periods all land on the class's least urgent level.
#: Must equal the class band width (checked by the ``priority-domain``
#: lint rule), or ``hi - bucket`` would fall out of the class band.
RM_PERIOD_HORIZON_LOG2 = 14

#: ``log2`` saturation horizon of the FIFO age encoder: messages older
#: than ``2**FIFO_AGE_HORIZON_LOG2 - 1`` slots all saturate at the
#: class's most urgent level.  Same band-width invariant as above.
FIFO_AGE_HORIZON_LOG2 = 14


def rate_priority(period_slots: int, traffic_class: TrafficClass) -> int:
    """Static rate-monotonic level: shorter period, higher priority.

    Periods are bucketed logarithmically (period ``1`` maps to the most
    urgent level, each doubling drops one level) so the 14 levels of a
    class band cover rates across four decades of period.
    """
    lo, hi = class_priority_range(traffic_class)
    if period_slots <= 1:
        return hi
    bucket = int(math.log2(period_slots))
    if bucket > RM_PERIOD_HORIZON_LOG2:
        bucket = RM_PERIOD_HORIZON_LOG2
    return hi - bucket


def age_priority(age_slots: int, traffic_class: TrafficClass) -> int:
    """FIFO level: the older the message, the higher the priority.

    A freshly released message starts at the class's least urgent level
    and climbs one level per ``log2`` doubling of its age, so long-waiting
    messages eventually outrank everything in their class -- FIFO up to
    the bucket quantisation.
    """
    lo, hi = class_priority_range(traffic_class)
    if age_slots <= 0:
        return lo
    bucket = int(math.log2(age_slots + 1))
    if bucket > FIFO_AGE_HORIZON_LOG2:
        bucket = FIFO_AGE_HORIZON_LOG2
    return lo + bucket


def _static_rank(message: Message) -> int:
    """A message's RM rank: its release period, in slots.

    Messages released outside a periodic connection carry no period;
    they rank by their relative deadline instead (deadline-monotonic),
    which coincides with RM exactly when deadline equals period.
    """
    period = message.period_slots
    if period is None:
        assert message.deadline_slot is not None  # deadline classes only
        period = message.deadline_slot - message.created_slot
    return period if period > 0 else 1


class SchedulingPolicy(ABC):
    """How deadline-bearing traffic is ordered and priority-encoded.

    A policy speaks at two points of the pipeline: `queue_key` orders a
    node's local transmit queue (which message the node requests), and
    `request_priority` encodes that head message into the 5-bit field
    (which node the master grants).  Non-real-time traffic is untouched:
    it is FIFO locally and pinned at ``PRIO_NON_REAL_TIME`` on the wire
    regardless of policy.

    ``cache_token`` names the policy's priority-equivalence bucket for a
    message at a slot; the protocol memoises ``request_priority`` per
    ``(token, class)``, so tokens must change exactly when the encoded
    priority may.
    """

    #: Registry name (also the campaign-axis / CLI value).
    name: str = ""

    @abstractmethod
    def queue_key(self, message: Message) -> int:
        """Primary heap key for the local queue (smaller serves first)."""

    @abstractmethod
    def cache_token(self, message: Message, current_slot: int) -> int:
        """Priority-equivalence token of ``message`` at ``current_slot``."""

    @abstractmethod
    def request_priority(
        self,
        message: Message,
        current_slot: int,
        mapping: LaxityMapping,
        traffic_class: TrafficClass,
    ) -> int:
        """The 5-bit priority level requested for ``message``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self))


class EdfPolicy(SchedulingPolicy):
    """The paper's policy: earliest deadline first via mapped laxity."""

    name = "edf"

    def queue_key(self, message: Message) -> int:
        assert message.deadline_slot is not None
        return message.deadline_slot

    def cache_token(self, message: Message, current_slot: int) -> int:
        laxity = message.laxity(current_slot)
        assert laxity is not None
        return laxity

    def request_priority(
        self,
        message: Message,
        current_slot: int,
        mapping: LaxityMapping,
        traffic_class: TrafficClass,
    ) -> int:
        laxity = message.laxity(current_slot)
        assert laxity is not None
        return mapping.priority_for(laxity, traffic_class)


class RmPolicy(SchedulingPolicy):
    """Rate monotonic: static priority by connection period."""

    name = "rm"

    def queue_key(self, message: Message) -> int:
        return _static_rank(message)

    def cache_token(self, message: Message, current_slot: int) -> int:
        # Static per message: one cache entry per distinct period.
        return _static_rank(message)

    def request_priority(
        self,
        message: Message,
        current_slot: int,
        mapping: LaxityMapping,
        traffic_class: TrafficClass,
    ) -> int:
        return rate_priority(_static_rank(message), traffic_class)


class FifoPolicy(SchedulingPolicy):
    """First-in-first-out: priority encodes release order (via age)."""

    name = "fifo"

    def queue_key(self, message: Message) -> int:
        # Ties (same release slot) resolve by msg_id -- arrival order --
        # through the heap's (key, msg_id) tuple comparison.
        return message.created_slot

    def cache_token(self, message: Message, current_slot: int) -> int:
        return current_slot - message.created_slot

    def request_priority(
        self,
        message: Message,
        current_slot: int,
        mapping: LaxityMapping,
        traffic_class: TrafficClass,
    ) -> int:
        return age_priority(current_slot - message.created_slot, traffic_class)


#: Policy names accepted by :func:`resolve_policy` (and therefore by
#: ``ScenarioConfig.policy``, ``RunOptions.policy``, campaign axes and
#: the CLI).
POLICIES: tuple[str, ...] = ("edf", "rm", "fifo")

_POLICY_FACTORIES: dict[str, type[SchedulingPolicy]] = {
    "edf": EdfPolicy,
    "rm": RmPolicy,
    "fifo": FifoPolicy,
}


def resolve_policy(policy: "SchedulingPolicy | str | None") -> SchedulingPolicy:
    """Resolve a policy name (or instance, or ``None``) to an instance.

    ``None`` means the default -- EDF, the paper's protocol.  Strings
    are looked up in the registry; instances pass through, so bespoke
    :class:`SchedulingPolicy` subclasses can be injected directly via
    :attr:`~repro.sim.runner.RunOptions.policy`.
    """
    if policy is None:
        return EdfPolicy()
    if isinstance(policy, SchedulingPolicy):
        return policy
    factory = _POLICY_FACTORIES.get(policy)
    if factory is None:
        raise ValueError(
            f"unknown scheduling policy {policy!r}; choose from {POLICIES}"
        )
    return factory()
