"""Traffic classes and the Table 1 priority allocation.

Table 1 of the paper allocates the 5-bit request priority field to the
user services:

====================  =========================
Priority level        Service
====================  =========================
0                     Nothing to send
1                     Non-real-time
2 - 16                Best effort
17 - 31               Logical real-time connection
====================  =========================

"A higher priority within the traffic class implies shorter laxity and a
more urgent message."  Messages of a logical real-time connection always
outrank best-effort, which always outranks non-real-time; within the two
real-time-ish classes the level encodes mapped laxity
(:mod:`repro.core.mapping`).
"""

from __future__ import annotations

import enum

from repro.phy.packets import MAX_PRIORITY, NO_REQUEST_PRIORITY

#: Priority level used when a node has nothing to send (Table 1, row 0).
PRIO_NOTHING_TO_SEND: int = NO_REQUEST_PRIORITY

#: Priority level of non-real-time traffic (Table 1, row 1).
PRIO_NON_REAL_TIME: int = 1

#: Inclusive priority range of best-effort traffic (Table 1, rows 2-16).
BEST_EFFORT_RANGE: tuple[int, int] = (2, 16)

#: Inclusive priority range of logical real-time connection traffic
#: (Table 1, rows 17-31).
RT_CONNECTION_RANGE: tuple[int, int] = (17, MAX_PRIORITY)


class TrafficClass(enum.IntEnum):
    """The three user traffic classes, ordered by precedence (higher wins).

    Section 3: "messages that are part of logical real-time connections
    always have higher priority than any other service"; best-effort is
    only requested when no real-time connection message is queued, and
    non-real-time only when neither of the others is.
    """

    NON_REAL_TIME = 0
    BEST_EFFORT = 1
    RT_CONNECTION = 2


def class_priority_range(traffic_class: TrafficClass) -> tuple[int, int]:
    """Inclusive (low, high) priority-field range of a traffic class."""
    if traffic_class is TrafficClass.NON_REAL_TIME:
        return (PRIO_NON_REAL_TIME, PRIO_NON_REAL_TIME)
    if traffic_class is TrafficClass.BEST_EFFORT:
        return BEST_EFFORT_RANGE
    if traffic_class is TrafficClass.RT_CONNECTION:
        return RT_CONNECTION_RANGE
    raise ValueError(f"unknown traffic class {traffic_class!r}")


def priority_to_class(priority: int) -> TrafficClass | None:
    """Traffic class a priority level belongs to; ``None`` for level 0."""
    if priority == PRIO_NOTHING_TO_SEND:
        return None
    if priority == PRIO_NON_REAL_TIME:
        return TrafficClass.NON_REAL_TIME
    lo, hi = BEST_EFFORT_RANGE
    if lo <= priority <= hi:
        return TrafficClass.BEST_EFFORT
    lo, hi = RT_CONNECTION_RANGE
    if lo <= priority <= hi:
        return TrafficClass.RT_CONNECTION
    raise ValueError(f"priority level {priority} outside the 5-bit field")
