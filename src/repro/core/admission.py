"""Online centralised admission control (Section 6).

"A specific node in the system is designated to solely handle new logical
real-time connections added to the system and to remove them when
required. ... The set Ma contains the logical real-time connections that
have been tested for feasibility and are accepted.  The admission test is
as follows.  If the utilisation of the logical real-time connections in Ma
together with the new connection is below U_max then the new logical
real-time connection is admitted into Ma. ... If the utilisation of the
new connection and Ma is higher than U_max then the new logical real-time
connection is rejected."

Connections "arrive one at a time at any time, even during run time" and
are assumed well behaved (agreed parameters honoured by the transmitter;
the simulator's per-node release machinery enforces that by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.connection import LogicalRealTimeConnection
from repro.core.timing import NetworkTiming


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of one admission test."""

    accepted: bool
    connection: LogicalRealTimeConnection
    #: Utilisation of the accepted set Ma *before* this request.
    utilisation_before: float
    #: Utilisation Ma would have with this connection included.
    utilisation_with: float
    #: The bound the test compares against (Equation 6).
    u_max: float

    @property
    def headroom(self) -> float:
        """Remaining admissible utilisation after the decision took effect."""
        base = self.utilisation_with if self.accepted else self.utilisation_before
        return self.u_max - base


class AdmissionController:
    """The designated admission-control node's logic.

    Holds the accepted set ``Ma`` and applies the Equation (5)/(6) test to
    every arriving request.  Thread-unsafe by design: the paper serialises
    all requests through one node, and the simulator honours that.
    """

    def __init__(self, timing: NetworkTiming):
        self.timing = timing
        self._accepted: dict[int, LogicalRealTimeConnection] = {}

    # ------------------------------------------------------------------

    @property
    def accepted_connections(self) -> tuple[LogicalRealTimeConnection, ...]:
        """The current set Ma."""
        return tuple(self._accepted.values())

    @property
    def utilisation(self) -> float:
        """Total utilisation of Ma."""
        return sum(c.utilisation for c in self._accepted.values())

    @property
    def u_max(self) -> float:
        """The Equation (6) bound the admission test compares against."""
        return self.timing.u_max

    def request(self, connection: LogicalRealTimeConnection) -> AdmissionDecision:
        """Test a new connection; admit it into Ma iff the test passes."""
        if connection.connection_id in self._accepted:
            raise ValueError(
                f"connection {connection.connection_id} is already admitted"
            )
        before = self.utilisation
        with_new = before + connection.utilisation
        accepted = with_new <= self.u_max
        if accepted:
            self._accepted[connection.connection_id] = connection
        return AdmissionDecision(
            accepted=accepted,
            connection=connection,
            utilisation_before=before,
            utilisation_with=with_new,
            u_max=self.u_max,
        )

    def remove(self, connection_id: int) -> LogicalRealTimeConnection:
        """Remove a connection from Ma (runtime tear-down), returning it."""
        try:
            return self._accepted.pop(connection_id)
        except KeyError:
            raise KeyError(
                f"connection {connection_id} is not in the accepted set"
            ) from None

    def is_admitted(self, connection_id: int) -> bool:
        """Whether a connection is currently in the accepted set Ma."""
        return connection_id in self._accepted

    def __len__(self) -> int:
        return len(self._accepted)
