"""Online centralised admission control (Section 6).

"A specific node in the system is designated to solely handle new logical
real-time connections added to the system and to remove them when
required. ... The set Ma contains the logical real-time connections that
have been tested for feasibility and are accepted.  The admission test is
as follows.  If the utilisation of the logical real-time connections in Ma
together with the new connection is below U_max then the new logical
real-time connection is admitted into Ma. ... If the utilisation of the
new connection and Ma is higher than U_max then the new logical real-time
connection is rejected."

Connections "arrive one at a time at any time, even during run time" and
are assumed well behaved (agreed parameters honoured by the transmitter;
the simulator's per-node release machinery enforces that by construction).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.connection import LogicalRealTimeConnection
from repro.core.timing import NetworkTiming
from repro.obs.events import AdmissionDecided


@dataclass(frozen=True, slots=True)
class AdmissionDecision:
    """Outcome of one admission test."""

    accepted: bool
    connection: LogicalRealTimeConnection
    #: Utilisation of the accepted set Ma *before* this request.
    utilisation_before: float
    #: Utilisation Ma would have with this connection included.
    utilisation_with: float
    #: The bound the test compares against (Equation 6).
    u_max: float

    @property
    def headroom(self) -> float:
        """Remaining admissible utilisation after the decision took effect."""
        base = self.utilisation_with if self.accepted else self.utilisation_before
        return self.u_max - base


class AdmissionController:
    """The designated admission-control node's logic.

    Holds the accepted set ``Ma`` and applies the Equation (5)/(6) test to
    every arriving request.  Thread-unsafe by design: the paper serialises
    all requests through one node, and the simulator honours that.
    """

    def __init__(self, timing: NetworkTiming) -> None:
        self.timing = timing
        self._accepted: dict[int, LogicalRealTimeConnection] = {}
        self._suspended: dict[int, LogicalRealTimeConnection] = {}
        #: Optional :class:`~repro.obs.events.EventDispatcher`; set by the
        #: simulator when observability is on.
        self.observer = None
        #: Slot the simulator is processing (stamped each fault-handling
        #: step so admission events carry it); ``None`` outside a run.
        self.current_slot: int | None = None

    def _emit_decision(self, decision: AdmissionDecision, phase: str) -> None:
        if self.observer is not None:
            self.observer.emit(
                AdmissionDecided(
                    slot=self.current_slot,
                    connection_id=decision.connection.connection_id,
                    accepted=decision.accepted,
                    phase=phase,
                    utilisation_with=decision.utilisation_with,
                    u_max=decision.u_max,
                )
            )

    # ------------------------------------------------------------------

    @property
    def accepted_connections(self) -> tuple[LogicalRealTimeConnection, ...]:
        """The current set Ma."""
        return tuple(self._accepted.values())

    @property
    def suspended_connections(self) -> tuple[LogicalRealTimeConnection, ...]:
        """Connections suspended by a node failure, awaiting rejoin."""
        return tuple(self._suspended.values())

    @property
    def utilisation(self) -> float:
        """Total utilisation of Ma."""
        return sum(c.utilisation for c in self._accepted.values())

    @property
    def u_max(self) -> float:
        """The Equation (6) bound the admission test compares against."""
        return self.timing.u_max

    def request(self, connection: LogicalRealTimeConnection) -> AdmissionDecision:
        """Test a new connection; admit it into Ma iff the test passes."""
        if (
            connection.connection_id in self._accepted
            or connection.connection_id in self._suspended
        ):
            raise ValueError(
                f"connection {connection.connection_id} is already admitted"
            )
        before = self.utilisation
        with_new = before + connection.utilisation
        accepted = with_new <= self.u_max
        if accepted:
            self._accepted[connection.connection_id] = connection
        decision = AdmissionDecision(
            accepted=accepted,
            connection=connection,
            utilisation_before=before,
            utilisation_with=with_new,
            u_max=self.u_max,
        )
        self._emit_decision(decision, "request")
        return decision

    def remove(self, connection_id: int) -> LogicalRealTimeConnection:
        """Remove a connection (runtime tear-down), returning it.

        Works on admitted and suspended connections alike -- a torn-down
        connection must not come back on node rejoin.
        """
        if connection_id in self._accepted:
            return self._accepted.pop(connection_id)
        if connection_id in self._suspended:
            return self._suspended.pop(connection_id)
        raise KeyError(
            f"connection {connection_id} is not in the accepted set"
        )

    def is_admitted(self, connection_id: int) -> bool:
        """Whether a connection is currently in the accepted set Ma."""
        return connection_id in self._accepted

    def is_suspended(self, connection_id: int) -> bool:
        """Whether a connection is suspended (owner node down)."""
        return connection_id in self._suspended

    # ------------------------------------------------------------------
    # Fault integration: suspend on node failure, re-admit on rejoin.
    # ------------------------------------------------------------------

    def suspend(self, connection_id: int) -> LogicalRealTimeConnection:
        """Move an admitted connection out of Ma, reclaiming its utilisation.

        Used when the owning node fail-stops: the connection's slots stop
        being consumed, so its share of ``U_max`` becomes available to new
        admission requests until :meth:`resume` re-admits it.
        """
        try:
            conn = self._accepted.pop(connection_id)
        except KeyError:
            raise KeyError(
                f"connection {connection_id} is not in the accepted set"
            ) from None
        self._suspended[connection_id] = conn
        return conn

    def resume(self, connection_id: int) -> AdmissionDecision:
        """Re-run the admission test for a suspended connection.

        On success the connection re-enters Ma; on failure (its share was
        given away while the node was down) it stays suspended, and the
        caller may retry once utilisation frees up.
        """
        try:
            conn = self._suspended[connection_id]
        except KeyError:
            raise KeyError(
                f"connection {connection_id} is not suspended"
            ) from None
        before = self.utilisation
        with_new = before + conn.utilisation
        accepted = with_new <= self.u_max
        if accepted:
            del self._suspended[connection_id]
            self._accepted[connection_id] = conn
        decision = AdmissionDecision(
            accepted=accepted,
            connection=conn,
            utilisation_before=before,
            utilisation_with=with_new,
            u_max=self.u_max,
        )
        self._emit_decision(decision, "resume")
        return decision

    def suspend_node(self, node: int) -> tuple[int, ...]:
        """Suspend every admitted connection sourced at ``node``."""
        ids = tuple(
            cid for cid, c in self._accepted.items() if c.source == node
        )
        for cid in ids:
            self.suspend(cid)
        return ids

    def resume_node(self, node: int) -> tuple[AdmissionDecision, ...]:
        """Try to re-admit every suspended connection sourced at ``node``."""
        ids = tuple(
            cid for cid, c in self._suspended.items() if c.source == node
        )
        return tuple(self.resume(cid) for cid in ids)

    def __len__(self) -> int:
        return len(self._accepted)
