"""The per-slot MAC protocol state machine.

Ties together request composition, the two-phase TCMA arbitration, and
clock hand-over into a single object the simulator drives slot by slot.

The pipeline follows Figure 3: the arbitration executed *during* slot
``k`` (collection phase, then distribution phase) decides the
transmissions and the master of slot ``k + 1``.  The simulator therefore
alternates, for every slot ``k``:

1. execute the transmissions planned for slot ``k`` (decided last slot);
2. run :meth:`MacProtocol.plan_slot` on the current queue state to obtain
   the plan -- grants, next master, inter-slot gap -- for slot ``k + 1``.

Baseline protocols (CC-FPR and variants, :mod:`repro.baselines`) implement
the same :class:`MacProtocol` interface so the simulator is agnostic to
which MAC it is driving.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.arbitration import Arbiter, ArbitrationResult, BreakPolicy
from repro.core.clocking import ClockHandoverStrategy, EdfHandover
from repro.core.mapping import LaxityMapping, LogarithmicMapping
from repro.core.messages import Message, MessageStatus
from repro.core.policy import EdfPolicy, SchedulingPolicy, resolve_policy
from repro.core.priorities import PRIO_NON_REAL_TIME, TrafficClass
from repro.core.queues import NodeQueues
from repro.obs.events import ArbitrationDenied, EventDispatcher
from repro.phy.packets import CollectionPacket, CollectionRequest, DistributionPacket
from repro.ring.segments import links_for_multicast
from repro.ring.topology import RingTopology


@dataclass(frozen=True, slots=True)
class PlannedTransmission:
    """One grant bound to the concrete message it will transmit."""

    node: int
    message: Message
    links: int
    destinations: frozenset[int]


@dataclass(frozen=True, slots=True)
class SlotPlan:
    """Everything decided by one arbitration round (for slot ``k + 1``).

    ``denied_by_break`` carries the messages that were refused solely
    because their path crossed the next slot's clock break, keyed by node
    -- the raw material of the priority-inversion experiments.
    """

    #: Slot index the plan applies to.
    transmit_slot: int
    #: Master (clock generator) of that slot.
    master: int
    #: Clock hand-over gap preceding that slot [s].
    gap_s: float
    transmissions: tuple[PlannedTransmission, ...] = ()
    denied_by_break: tuple[PlannedTransmission, ...] = ()
    #: Number of nodes that submitted a non-empty request.
    n_requests: int = 0
    #: The raw arbitration result (None for protocols without a global
    #: arbitration step, e.g. CC-FPR's distributed booking).
    arbitration: ArbitrationResult | None = None
    #: The control packets exchanged (populated only when the protocol was
    #: constructed with ``trace_packets=True``; heavy for long runs).
    collection_packet: "CollectionPacket | None" = None
    distribution_packet: "DistributionPacket | None" = None


@dataclass(frozen=True, slots=True)
class SlotOutcome:
    """What actually happened in one executed slot."""

    slot: int
    master: int
    gap_s: float
    #: Messages that sent one packet this slot.
    transmitted: tuple[PlannedTransmission, ...] = ()
    #: Grants that went unused (message dropped between plan and slot).
    wasted: tuple[PlannedTransmission, ...] = ()


class MacProtocol(ABC):
    """Interface every MAC implementation exposes to the simulator."""

    def __init__(self, topology: RingTopology) -> None:
        self.topology = topology
        #: Optional :class:`~repro.obs.events.EventDispatcher`; set by the
        #: simulator when observability is on.  Protocols may emit typed
        #: events (e.g. arbitration denials) through it.
        self.observer: EventDispatcher | None = None
        # Identity of the last queue mapping that passed the coverage
        # check: the simulator hands the same mapping object to every
        # slot, so validating it once (instead of rebuilding two sets per
        # slot) takes the check off the hot path without weakening it for
        # direct callers, who construct fresh mappings.
        self._checked_queues: Mapping[int, NodeQueues] | None = None
        # Path masks depend only on (source, destinations) on a fixed
        # topology; caching them takes link computation off the per-slot
        # hot path.
        self._route_cache: dict[tuple[int, frozenset[int]], tuple[int, int]] = {}
        # Hand-over gaps per (master, next master) pair on the fixed ring.
        self._gap_cache: dict[tuple[int, int], float] = {}

    @property
    def queue_policy(self) -> "SchedulingPolicy | None":
        """Policy ordering the per-node transmit queues, or ``None``.

        ``None`` means the :class:`~repro.core.queues.NodeQueues` default
        (earliest deadline first within deadline classes) -- the right
        order for every protocol that has no pluggable policy.
        """
        return None

    @property
    def idle_plan_is_stationary(self) -> bool:
        """Whether an all-idle arbitration keeps master and gap unchanged.

        True only for protocols whose plan, when every queue is empty, is
        a fixed point: same master, zero gap, no grants.  The simulator's
        idle-slot fast-forward is sound exactly under this property;
        rotating-master protocols (TDMA, CC-FPR, round-robin hand-over)
        must return False.
        """
        return False

    def _check_queues(self, queues_by_node: Mapping[int, NodeQueues]) -> None:
        """Validate that the mapping covers exactly nodes ``0..N-1``.

        Memoised by object identity: the per-slot driver passes one
        long-lived mapping, which is validated on first sight only.
        """
        if queues_by_node is self._checked_queues:
            return
        n = self.topology.n_nodes
        if set(queues_by_node.keys()) != set(range(n)):
            raise ValueError(
                f"queues_by_node must cover exactly nodes 0..{n - 1}"
            )
        self._checked_queues = queues_by_node

    def route_masks(
        self, source: int, destinations: frozenset[int]
    ) -> tuple[int, int]:
        """Cached ``(link mask, destination mask)`` of one ring path."""
        key = (source, destinations)
        cached = self._route_cache.get(key)
        if cached is None:
            links = links_for_multicast(self.topology, source, destinations)
            dest_mask = 0
            for dst in destinations:
                dest_mask |= 1 << dst
            cached = (links, dest_mask)
            self._route_cache[key] = cached
        return cached

    @abstractmethod
    def plan_slot(
        self,
        current_slot: int,
        current_master: int,
        queues_by_node: Mapping[int, NodeQueues],
    ) -> SlotPlan:
        """Arbitrate during ``current_slot`` and plan slot ``current_slot + 1``."""

    def execute_plan(self, plan: SlotPlan) -> SlotOutcome:
        """Carry out the planned transmissions (one packet per grant)."""
        transmitted: list[PlannedTransmission] = []
        wasted: list[PlannedTransmission] = []
        for tx in plan.transmissions:
            msg = tx.message
            if msg.status in (MessageStatus.DROPPED, MessageStatus.DELIVERED):
                wasted.append(tx)
                continue
            msg.record_sent_packet(plan.transmit_slot)
            transmitted.append(tx)
        return SlotOutcome(
            slot=plan.transmit_slot,
            master=plan.master,
            gap_s=plan.gap_s,
            transmitted=tuple(transmitted),
            wasted=tuple(wasted),
        )


class CcrEdfProtocol(MacProtocol):
    """The paper's protocol: TCMA two-phase arbitration + EDF hand-over.

    Parameters
    ----------
    topology:
        The ring.
    mapping:
        Laxity-to-priority mapping (default: the paper's logarithmic map).
    arbiter:
        Grant-sweep configuration (default: spatial reuse on).
    handover:
        Clock hand-over strategy.  The default :class:`EdfHandover` gives
        CCR-EDF proper; passing :class:`RoundRobinHandover` yields the
        "global EDF arbitration on a simple-clocking ring" hybrid used as
        an ablation baseline.
    policy:
        The :class:`~repro.core.policy.SchedulingPolicy` (or its registry
        name) deciding queue order and the 5-bit priority encoding.  The
        default is EDF -- the paper's protocol; ``"rm"`` / ``"fifo"``
        re-use the identical arbitration machinery with a rate / release-
        order encoding (the scheduler-zoo head-to-head study).
    """

    def __init__(
        self,
        topology: RingTopology,
        mapping: LaxityMapping | None = None,
        arbiter: Arbiter | None = None,
        handover: ClockHandoverStrategy | None = None,
        trace_packets: bool = False,
        policy: "SchedulingPolicy | str | None" = None,
    ) -> None:
        super().__init__(topology)
        self.mapping = mapping if mapping is not None else LogarithmicMapping()
        self.arbiter = arbiter if arbiter is not None else Arbiter(spatial_reuse=True)
        self.handover = handover if handover is not None else EdfHandover()
        self.trace_packets = trace_packets
        self._edf_handover = isinstance(self.handover, EdfHandover)
        self.policy = resolve_policy(policy)
        # EDF keeps its dedicated fast path in compose_request (below):
        # the default policy must stay bit-identical *and* cost-identical
        # to the pre-policy protocol.
        self._edf_policy = type(self.policy) is EdfPolicy
        # Priority levels memoised per (policy cache token, class): for
        # EDF the token is the laxity (a pure function of it recurs every
        # slot), for RM the period, for FIFO the age.
        self._prio_cache: dict[tuple[int, TrafficClass], int] = {}
        # Last composed request per node: (head message, priority,
        # request).  Valid while the queue head and its priority bucket
        # are unchanged -- the common case, since the logarithmic map
        # changes bucket only when the laxity crosses a power of two.
        self._compose_cache: dict[
            int, tuple[Message, int, CollectionRequest]
        ] = {}

    @property
    def idle_plan_is_stationary(self) -> bool:
        """With EDF hand-over an all-idle slot keeps the master (gap 0)."""
        return self._edf_handover

    @property
    def queue_policy(self) -> "SchedulingPolicy | None":
        """The policy, when it orders queues differently from EDF."""
        return None if self._edf_policy else self.policy

    # ------------------------------------------------------------------

    def compose_request(
        self, queues: NodeQueues, current_slot: int
    ) -> tuple[CollectionRequest, Message | None]:
        """Build one node's collection-phase request from its queue heads.

        The node requests its locally highest-priority message: the class
        precedence rule picks the queue, the laxity mapping computes the
        5-bit priority, and the ring path of the message fills the link
        reservation and destination fields (Figure 4).

        Composition is incremental: the request built for this node last
        slot is reused as long as the queue head and its mapped priority
        are unchanged, so steady-state slots recompute only the laxity.
        """
        msg = queues.head()
        if msg is None:
            return CollectionRequest.empty(), None
        traffic_class = msg.traffic_class
        if traffic_class is TrafficClass.NON_REAL_TIME:
            priority = PRIO_NON_REAL_TIME
        elif self._edf_policy:
            laxity = msg.laxity(current_slot)
            assert laxity is not None  # deadline classes always have one
            prio_key = (laxity, traffic_class)
            priority = self._prio_cache.get(prio_key)
            if priority is None:
                priority = self.mapping.priority_for(laxity, traffic_class)
                self._prio_cache[prio_key] = priority
        else:
            token = self.policy.cache_token(msg, current_slot)
            prio_key = (token, traffic_class)
            priority = self._prio_cache.get(prio_key)
            if priority is None:
                priority = self.policy.request_priority(
                    msg, current_slot, self.mapping, traffic_class
                )
                self._prio_cache[prio_key] = priority
        cached = self._compose_cache.get(queues.node)
        if cached is not None and cached[0] is msg and cached[1] == priority:
            return cached[2], msg
        links, destinations = self.route_masks(msg.source, msg.destinations)
        request = CollectionRequest(
            priority=priority, links=links, destinations=destinations
        )
        self._compose_cache[queues.node] = (msg, priority, request)
        return request, msg

    def plan_slot(
        self,
        current_slot: int,
        current_master: int,
        queues_by_node: Mapping[int, NodeQueues],
    ) -> SlotPlan:
        n = self.topology.n_nodes
        self._check_queues(queues_by_node)

        # --- collection phase: each node appends its request ----------
        # Walk the nodes in append order (downstream from the master; the
        # master itself last, at d == n) exactly as the packet travels,
        # keeping only the non-empty requests the master would process.
        compose = self.compose_request
        entries: list[tuple[int, CollectionRequest]] = []
        messages_by_node: dict[int, Message] = {}
        for d in range(1, n + 1):
            node = (current_master + d) % n
            request, msg = compose(queues_by_node[node], current_slot)
            if msg is not None:
                entries.append((node, request))
                messages_by_node[node] = msg
        n_requests = len(entries)
        requests_by_node = dict(entries)

        packet: CollectionPacket | None = None
        if self.trace_packets:
            # Wire-level trace: assemble the exact Figure 4 packet.
            empty = CollectionRequest.empty()
            ordered = [
                requests_by_node.get((current_master + d) % n, empty)
                for d in range(1, n)
            ]
            ordered.append(requests_by_node.get(current_master, empty))
            packet = CollectionPacket(
                n_nodes=n, master=current_master, requests=tuple(ordered)
            )

        # --- master processes the requests ----------------------------
        if self._edf_handover:
            result = self.arbiter.arbitrate_entries(
                n, current_master, entries, BreakPolicy.AT_HP_NODE
            )
            next_master = self.handover.next_master(
                self.topology, current_master, result
            )
        else:
            # Fixed hand-over (e.g. round-robin): the next master is known
            # before arbitration, so the break location is too.
            provisional = ArbitrationResult(
                master=current_master, grants=(), hp_node=current_master
            )
            next_master = self.handover.next_master(
                self.topology, current_master, provisional
            )
            result = self.arbiter.arbitrate_entries(
                n,
                current_master,
                entries,
                BreakPolicy.AT_FIXED_NODE,
                break_node=next_master,
            )

        # --- distribution phase & hand-over ----------------------------
        gap_key = (current_master, next_master)
        gap_s = self._gap_cache.get(gap_key)
        if gap_s is None:
            gap_s = self.handover.gap_s(self.topology, current_master, next_master)
            self._gap_cache[gap_key] = gap_s

        transmissions: list[PlannedTransmission] = []
        for grant in result.grants:
            msg = messages_by_node[grant.node]  # granted nodes requested
            transmissions.append(
                PlannedTransmission(
                    node=grant.node,
                    message=msg,
                    links=grant.request.links,
                    destinations=msg.destinations,
                )
            )
        denied: list[PlannedTransmission] = []
        for node in result.denied_by_break:
            msg = messages_by_node[node]
            denied.append(
                PlannedTransmission(
                    node=node,
                    message=msg,
                    links=requests_by_node[node].links,
                    destinations=msg.destinations,
                )
            )

        distribution: DistributionPacket | None = None
        if self.trace_packets:
            assert packet is not None
            distribution = self.arbiter.build_distribution_packet(packet, result)

        if denied and self.observer is not None:
            self.observer.emit(
                ArbitrationDenied(
                    slot=current_slot + 1,
                    nodes=tuple(tx.node for tx in denied),
                )
            )

        return SlotPlan(
            transmit_slot=current_slot + 1,
            master=next_master,
            gap_s=gap_s,
            transmissions=tuple(transmissions),
            denied_by_break=tuple(denied),
            n_requests=n_requests,
            arbitration=result,
            collection_packet=packet,
            distribution_packet=distribution,
        )
