"""The per-slot MAC protocol state machine.

Ties together request composition, the two-phase TCMA arbitration, and
clock hand-over into a single object the simulator drives slot by slot.

The pipeline follows Figure 3: the arbitration executed *during* slot
``k`` (collection phase, then distribution phase) decides the
transmissions and the master of slot ``k + 1``.  The simulator therefore
alternates, for every slot ``k``:

1. execute the transmissions planned for slot ``k`` (decided last slot);
2. run :meth:`MacProtocol.plan_slot` on the current queue state to obtain
   the plan -- grants, next master, inter-slot gap -- for slot ``k + 1``.

Baseline protocols (CC-FPR and variants, :mod:`repro.baselines`) implement
the same :class:`MacProtocol` interface so the simulator is agnostic to
which MAC it is driving.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.arbitration import Arbiter, ArbitrationResult, BreakPolicy
from repro.core.clocking import ClockHandoverStrategy, EdfHandover
from repro.core.mapping import LaxityMapping, LogarithmicMapping
from repro.core.messages import Message, MessageStatus
from repro.core.priorities import PRIO_NON_REAL_TIME, TrafficClass
from repro.core.queues import NodeQueues
from repro.phy.packets import CollectionPacket, CollectionRequest, DistributionPacket
from repro.ring.segments import links_for_multicast
from repro.ring.topology import RingTopology


@dataclass(frozen=True, slots=True)
class PlannedTransmission:
    """One grant bound to the concrete message it will transmit."""

    node: int
    message: Message
    links: int
    destinations: frozenset[int]


@dataclass(frozen=True)
class SlotPlan:
    """Everything decided by one arbitration round (for slot ``k + 1``).

    ``denied_by_break`` carries the messages that were refused solely
    because their path crossed the next slot's clock break, keyed by node
    -- the raw material of the priority-inversion experiments.
    """

    #: Slot index the plan applies to.
    transmit_slot: int
    #: Master (clock generator) of that slot.
    master: int
    #: Clock hand-over gap preceding that slot [s].
    gap_s: float
    transmissions: tuple[PlannedTransmission, ...] = ()
    denied_by_break: tuple[PlannedTransmission, ...] = ()
    #: Number of nodes that submitted a non-empty request.
    n_requests: int = 0
    #: The raw arbitration result (None for protocols without a global
    #: arbitration step, e.g. CC-FPR's distributed booking).
    arbitration: ArbitrationResult | None = None
    #: The control packets exchanged (populated only when the protocol was
    #: constructed with ``trace_packets=True``; heavy for long runs).
    collection_packet: "CollectionPacket | None" = None
    distribution_packet: "DistributionPacket | None" = None


@dataclass(frozen=True)
class SlotOutcome:
    """What actually happened in one executed slot."""

    slot: int
    master: int
    gap_s: float
    #: Messages that sent one packet this slot.
    transmitted: tuple[PlannedTransmission, ...] = ()
    #: Grants that went unused (message dropped between plan and slot).
    wasted: tuple[PlannedTransmission, ...] = ()


class MacProtocol(ABC):
    """Interface every MAC implementation exposes to the simulator."""

    def __init__(self, topology: RingTopology):
        self.topology = topology

    @abstractmethod
    def plan_slot(
        self,
        current_slot: int,
        current_master: int,
        queues_by_node: Mapping[int, NodeQueues],
    ) -> SlotPlan:
        """Arbitrate during ``current_slot`` and plan slot ``current_slot + 1``."""

    def execute_plan(self, plan: SlotPlan) -> SlotOutcome:
        """Carry out the planned transmissions (one packet per grant)."""
        transmitted: list[PlannedTransmission] = []
        wasted: list[PlannedTransmission] = []
        for tx in plan.transmissions:
            msg = tx.message
            if msg.status in (MessageStatus.DROPPED, MessageStatus.DELIVERED):
                wasted.append(tx)
                continue
            msg.record_sent_packet(plan.transmit_slot)
            transmitted.append(tx)
        return SlotOutcome(
            slot=plan.transmit_slot,
            master=plan.master,
            gap_s=plan.gap_s,
            transmitted=tuple(transmitted),
            wasted=tuple(wasted),
        )


class CcrEdfProtocol(MacProtocol):
    """The paper's protocol: TCMA two-phase arbitration + EDF hand-over.

    Parameters
    ----------
    topology:
        The ring.
    mapping:
        Laxity-to-priority mapping (default: the paper's logarithmic map).
    arbiter:
        Grant-sweep configuration (default: spatial reuse on).
    handover:
        Clock hand-over strategy.  The default :class:`EdfHandover` gives
        CCR-EDF proper; passing :class:`RoundRobinHandover` yields the
        "global EDF arbitration on a simple-clocking ring" hybrid used as
        an ablation baseline.
    """

    def __init__(
        self,
        topology: RingTopology,
        mapping: LaxityMapping | None = None,
        arbiter: Arbiter | None = None,
        handover: ClockHandoverStrategy | None = None,
        trace_packets: bool = False,
    ):
        super().__init__(topology)
        self.mapping = mapping if mapping is not None else LogarithmicMapping()
        self.arbiter = arbiter if arbiter is not None else Arbiter(spatial_reuse=True)
        self.handover = handover if handover is not None else EdfHandover()
        self.trace_packets = trace_packets
        # Path masks depend only on (source, destinations) on a fixed
        # topology; caching them takes link computation off the per-slot
        # hot path.
        self._route_cache: dict[tuple[int, frozenset[int]], tuple[int, int]] = {}

    # ------------------------------------------------------------------

    def compose_request(
        self, queues: NodeQueues, current_slot: int
    ) -> tuple[CollectionRequest, Message | None]:
        """Build one node's collection-phase request from its queue heads.

        The node requests its locally highest-priority message: the class
        precedence rule picks the queue, the laxity mapping computes the
        5-bit priority, and the ring path of the message fills the link
        reservation and destination fields (Figure 4).
        """
        msg = queues.head()
        if msg is None:
            return CollectionRequest.empty(), None
        if msg.traffic_class is TrafficClass.NON_REAL_TIME:
            priority = PRIO_NON_REAL_TIME
        else:
            laxity = msg.laxity(current_slot)
            assert laxity is not None  # deadline classes always have one
            priority = self.mapping.priority_for(laxity, msg.traffic_class)
        route = (msg.source, msg.destinations)
        cached = self._route_cache.get(route)
        if cached is None:
            links = links_for_multicast(
                self.topology, msg.source, msg.destinations
            )
            destinations = 0
            for dst in msg.destinations:
                destinations |= 1 << dst
            cached = (links, destinations)
            self._route_cache[route] = cached
        links, destinations = cached
        return (
            CollectionRequest(priority=priority, links=links, destinations=destinations),
            msg,
        )

    def plan_slot(
        self,
        current_slot: int,
        current_master: int,
        queues_by_node: Mapping[int, NodeQueues],
    ) -> SlotPlan:
        n = self.topology.n_nodes
        if set(queues_by_node.keys()) != set(range(n)):
            raise ValueError(
                f"queues_by_node must cover exactly nodes 0..{n - 1}"
            )

        # --- collection phase: each node appends its request ----------
        requests_by_node: dict[int, CollectionRequest] = {}
        messages_by_node: dict[int, Message | None] = {}
        for node in range(n):
            req, msg = self.compose_request(queues_by_node[node], current_slot)
            requests_by_node[node] = req
            messages_by_node[node] = msg

        # Assemble in append order (downstream from the master; the master
        # itself last) exactly as the packet travels.
        ordered = [
            requests_by_node[(current_master + d) % n] for d in range(1, n)
        ]
        ordered.append(requests_by_node[current_master])
        packet = CollectionPacket(
            n_nodes=n, master=current_master, requests=tuple(ordered)
        )

        # --- master processes the requests ----------------------------
        if isinstance(self.handover, EdfHandover):
            result = self.arbiter.arbitrate(packet, BreakPolicy.AT_HP_NODE)
            next_master = self.handover.next_master(
                self.topology, current_master, result
            )
        else:
            # Fixed hand-over (e.g. round-robin): the next master is known
            # before arbitration, so the break location is too.
            provisional = ArbitrationResult(
                master=current_master, grants=(), hp_node=current_master
            )
            next_master = self.handover.next_master(
                self.topology, current_master, provisional
            )
            result = self.arbiter.arbitrate(
                packet, BreakPolicy.AT_FIXED_NODE, break_node=next_master
            )

        # --- distribution phase & hand-over ----------------------------
        gap_s = self.handover.gap_s(self.topology, current_master, next_master)

        transmissions = []
        for grant in result.grants:
            msg = messages_by_node[grant.node]
            assert msg is not None  # granted nodes had a head message
            transmissions.append(
                PlannedTransmission(
                    node=grant.node,
                    message=msg,
                    links=grant.request.links,
                    destinations=msg.destinations,
                )
            )
        denied = []
        for node in result.denied_by_break:
            msg = messages_by_node[node]
            assert msg is not None
            denied.append(
                PlannedTransmission(
                    node=node,
                    message=msg,
                    links=requests_by_node[node].links,
                    destinations=msg.destinations,
                )
            )

        distribution = None
        if self.trace_packets:
            distribution = self.arbiter.build_distribution_packet(packet, result)

        return SlotPlan(
            transmit_slot=current_slot + 1,
            master=next_master,
            gap_s=gap_s,
            transmissions=tuple(transmissions),
            denied_by_break=tuple(denied),
            n_requests=sum(1 for r in requests_by_node.values() if not r.is_empty),
            arbitration=result,
            collection_packet=packet if self.trace_packets else None,
            distribution_packet=distribution,
        )
