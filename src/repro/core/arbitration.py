"""The master's arbitration: request sorting and the grant sweep.

Section 3: "When the completed collection phase packet arrives back at the
master, the requests are processed.  There can only be N requests in the
master, as each node gets to send one request per slot.  The list of
requests is sorted in the same way as the local queues.  The master
traverses the list, starting with the request with highest priority
(closest to deadline) and then tries to fulfil as many of the N requests
as possible."  Ties on priority are resolved by node index.

The "tries to fulfil as many as possible" step is the spatial-reuse grant
sweep: a request is granted iff (a) its reserved links do not overlap the
links of any already-granted request, and (b) it does not cross the clock
break of the slot it will transmit in.

The clock break: the next slot is clocked by its master, whose clock
signal covers only ``N - 1`` hops -- every link except the one *entering*
the master.  A transmission whose path includes that link is unfeasible in
that slot ("if the clocking node is in the path of the message, the
message is unfeasible and cannot be sent during that slot", Section 1).
Under CCR-EDF the next master *is* the highest-priority requester, whose
own path can never include the link entering itself -- hence the paper's
guarantee that the most urgent message is always feasible.  Under the
round-robin baseline the break lands arbitrarily, producing the priority
inversion the paper criticises.

The schedulability analysis ignores spatial reuse (only one guaranteed
grant per slot, Section 5), so the arbiter also supports a single-grant
analysis mode.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.priorities import PRIO_NOTHING_TO_SEND
from repro.phy.packets import CollectionPacket, CollectionRequest, DistributionPacket
from repro.ring.segments import masks_overlap


class BreakPolicy(enum.Enum):
    """How the grant sweep locates the next slot's clock break."""

    #: The break sits at the highest-priority requester (CCR-EDF: the next
    #: master is the hp node).
    AT_HP_NODE = "at_hp_node"
    #: The break sits at an explicitly given node (round-robin baselines).
    AT_FIXED_NODE = "at_fixed_node"
    #: No break is modelled (idealised network; upper bound).
    NONE = "none"


@dataclass(frozen=True, slots=True)
class Grant:
    """One granted transmission for the coming slot."""

    #: Node permitted to transmit.
    node: int
    #: The request being granted (links it will occupy, destinations).
    request: CollectionRequest


@dataclass(frozen=True, slots=True)
class ArbitrationResult:
    """Outcome of one arbitration round.

    ``hp_node`` is the node holding the highest-priority request -- under
    CCR-EDF, the master of the next slot.  When no node requested
    anything, the current master retains the clock (``hp_node == master``)
    and ``grants`` is empty.  ``denied_by_break`` lists nodes whose
    requests were refused *solely* because their path crossed the next
    slot's clock break -- the priority-inversion events experiment S1
    counts.
    """

    master: int
    grants: tuple[Grant, ...]
    hp_node: int
    denied_by_break: tuple[int, ...] = ()

    def granted_nodes(self) -> frozenset[int]:
        """The set of nodes granted a transmission this slot."""
        return frozenset(g.node for g in self.grants)

    def is_granted(self, node: int) -> bool:
        """Whether ``node`` received a grant."""
        return any(g.node == node for g in self.grants)


class Arbiter:
    """Implements the master's processing of a collection packet.

    Parameters
    ----------
    spatial_reuse:
        Grant every feasible non-overlapping request (run-time behaviour)
        instead of only the single highest-priority one (analysis mode).
    max_grants:
        Optional cap on grants per slot (``None`` = unlimited); mostly
        useful for controlled experiments.
    """

    def __init__(self, spatial_reuse: bool = True, max_grants: int | None = None) -> None:
        if max_grants is not None and max_grants < 1:
            raise ValueError(f"max_grants must be >= 1 or None, got {max_grants}")
        self.spatial_reuse = spatial_reuse
        self.max_grants = max_grants

    def sort_requests(
        self, packet: CollectionPacket
    ) -> list[tuple[int, CollectionRequest]]:
        """Non-empty requests as ``(node, request)``, highest priority first.

        "The list of requests is sorted in the same way as the local
        queues": descending priority; ties resolved by (ascending) node
        index, which the master knows from each request's position in the
        packet.
        """
        entries = [
            (packet.node_of_position(pos), req)
            for pos, req in enumerate(packet.requests)
            if req.priority != PRIO_NOTHING_TO_SEND
        ]
        entries.sort(key=lambda e: (-e[1].priority, e[0]))
        return entries

    @staticmethod
    def break_link(n_nodes: int, master: int) -> int:
        """Id of the link entering ``master`` -- the unclocked link."""
        return (master - 1) % n_nodes

    def arbitrate(
        self,
        packet: CollectionPacket,
        break_policy: BreakPolicy = BreakPolicy.AT_HP_NODE,
        break_node: int | None = None,
    ) -> ArbitrationResult:
        """Run the grant sweep over a complete collection packet.

        Parameters
        ----------
        packet:
            The returned collection-phase packet.
        break_policy:
            Where the next slot's clock break sits (see
            :class:`BreakPolicy`).
        break_node:
            The fixed next master; required iff ``break_policy`` is
            :attr:`BreakPolicy.AT_FIXED_NODE`.
        """
        entries = [
            (packet.node_of_position(pos), req)
            for pos, req in enumerate(packet.requests)
            if req.priority != PRIO_NOTHING_TO_SEND
        ]
        return self.arbitrate_entries(
            packet.n_nodes, packet.master, entries, break_policy, break_node
        )

    def arbitrate_entries(
        self,
        n_nodes: int,
        master: int,
        entries: list[tuple[int, CollectionRequest]],
        break_policy: BreakPolicy = BreakPolicy.AT_HP_NODE,
        break_node: int | None = None,
    ) -> ArbitrationResult:
        """Grant sweep over pre-extracted ``(node, request)`` entries.

        The fast path of :meth:`arbitrate`: callers that already hold the
        non-empty requests (the simulator's slot loop) skip the packet
        object entirely; wire-level users go through :meth:`arbitrate`.
        ``entries`` may be in any order and is sorted in place.
        """
        if (break_policy is BreakPolicy.AT_FIXED_NODE) != (break_node is not None):
            raise ValueError(
                "break_node must be given exactly when break_policy is AT_FIXED_NODE"
            )
        if not entries:
            # Nothing to send anywhere: the master keeps the clock.
            return ArbitrationResult(master=master, grants=(), hp_node=master)

        entries.sort(key=lambda e: (-e[1].priority, e[0]))
        ordered = entries
        hp_node = ordered[0][0]
        n = n_nodes
        if break_policy is BreakPolicy.AT_HP_NODE:
            break_mask = 1 << self.break_link(n, hp_node)
        elif break_policy is BreakPolicy.AT_FIXED_NODE:
            assert break_node is not None
            break_mask = 1 << self.break_link(n, break_node)
        else:
            break_mask = 0

        limit = 1 if not self.spatial_reuse else (self.max_grants or len(ordered))

        grants: list[Grant] = []
        denied_by_break: list[int] = []
        occupied = 0
        for node, request in ordered:
            if len(grants) >= limit:
                break
            if request.links == 0:
                # A request reserving no links cannot transmit; skip it.
                # (Zero-link requests are used by pure signalling services.)
                continue
            if masks_overlap(request.links, break_mask):
                denied_by_break.append(node)
                continue
            if masks_overlap(occupied, request.links):
                continue
            grants.append(Grant(node=node, request=request))
            occupied |= request.links

        return ArbitrationResult(
            master=master,
            grants=tuple(grants),
            hp_node=hp_node,
            denied_by_break=tuple(denied_by_break),
        )

    def build_distribution_packet(
        self,
        packet: CollectionPacket,
        result: ArbitrationResult,
        extension_bits: int = 0,
    ) -> DistributionPacket:
        """Encode an arbitration result as the Figure 5 packet."""
        n = packet.n_nodes
        granted = result.granted_nodes()
        grants_bits = tuple(
            ((packet.master + d) % n) in granted for d in range(1, n)
        )
        return DistributionPacket(
            n_nodes=n,
            master=packet.master,
            grants=grants_bits,
            hp_node=result.hp_node,
            extension_bits=extension_bits,
        )
