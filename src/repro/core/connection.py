"""Logical real-time connections (Sections 5 and 6).

A logical real-time connection (LRTC) is the unit of guaranteed service: a
periodic message stream from one source to a fixed destination set, with

* period ``P_i`` (in slots),
* message size ``e_i`` (in slots, the number of data-packets per message),
* relative deadline ``D_i`` (in slots) -- the paper assumes ``D_i = P_i``
  (Section 5), which stays the default; an explicit ``deadline_slots``
  declares a *constrained* deadline ``D_i < P_i``, the shape of the
  industrial sensor workloads the scheduler-zoo study sweeps.

Connections are admitted and removed at runtime by the admission
controller; once admitted, the source releases one message per period and
the network's EDF arbitration guarantees every message meets its deadline
as long as total utilisation stays within ``U_max``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.core.messages import Message
from repro.core.priorities import TrafficClass

_connection_ids = itertools.count()


@dataclass(frozen=True)
class LogicalRealTimeConnection:
    """A periodic guaranteed-service message stream.

    Parameters
    ----------
    source:
        Originating node id.
    destinations:
        Destination node ids (singleton = unicast, several = multicast).
    period_slots:
        Release period ``P_i`` in slots.
    size_slots:
        Message size ``e_i`` in slots; must satisfy ``e_i <= P_i`` for the
        connection to be schedulable at all.
    phase_slots:
        Release offset of the first message, in slots (default 0).
    deadline_slots:
        Explicit relative deadline ``D_i`` in slots; ``None`` (default)
        means the paper's ``D_i = P_i`` assumption.  Must satisfy
        ``e_i <= D_i <= P_i`` (a constrained deadline): shorter than the
        message is intrinsically infeasible, longer than the period
        would let messages of one connection overtake each other.
    """

    source: int
    destinations: frozenset[int]
    period_slots: int
    size_slots: int
    phase_slots: int = 0
    deadline_slots: int | None = None
    connection_id: int = field(default_factory=lambda: next(_connection_ids))

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ValueError("a connection needs at least one destination")
        if self.source in self.destinations:
            raise ValueError(f"node {self.source} cannot connect to itself")
        if self.period_slots < 1:
            raise ValueError(f"period must be >= 1 slot, got {self.period_slots}")
        if self.size_slots < 1:
            raise ValueError(f"message size must be >= 1 slot, got {self.size_slots}")
        if self.size_slots > self.period_slots:
            raise ValueError(
                f"message size {self.size_slots} exceeds period "
                f"{self.period_slots}: intrinsically infeasible"
            )
        if self.phase_slots < 0:
            raise ValueError(f"phase must be non-negative, got {self.phase_slots}")
        if self.deadline_slots is not None:
            if self.deadline_slots < self.size_slots:
                raise ValueError(
                    f"relative deadline {self.deadline_slots} is shorter than "
                    f"the {self.size_slots}-slot message: intrinsically "
                    "infeasible"
                )
            if self.deadline_slots > self.period_slots:
                raise ValueError(
                    f"relative deadline {self.deadline_slots} exceeds the "
                    f"period {self.period_slots}: only constrained deadlines "
                    "(D <= P) are supported"
                )

    @property
    def utilisation(self) -> float:
        """``e_i / P_i``, the connection's slot utilisation (Equation 5)."""
        return self.size_slots / self.period_slots

    @property
    def relative_deadline_slots(self) -> int:
        """``D_i``: the explicit deadline, or the period when implicit.

        Note the utilisation-based admission test (Equation 5) is exact
        only under ``D_i = P_i``; with a constrained deadline it is
        optimistic, which is precisely the regime the head-to-head
        policy study measures misses in.
        """
        return (
            self.deadline_slots
            if self.deadline_slots is not None
            else self.period_slots
        )

    @property
    def deadline_ratio(self) -> float:
        """``D_i / P_i`` (1.0 for the paper's implicit deadlines)."""
        return self.relative_deadline_slots / self.period_slots

    def releases_at(self, slot: int) -> bool:
        """Whether a new message of this connection is released at ``slot``."""
        if slot < self.phase_slots:
            return False
        return (slot - self.phase_slots) % self.period_slots == 0

    def release_message(self, slot: int) -> Message:
        """Instantiate the message released at ``slot``.

        A message released at slot ``t`` is arbitrated during ``t`` and
        transmittable from ``t + 1`` (the Figure 3 pipeline), so its
        deadline window is the ``D_i`` slots ``(t, t + D_i]`` --
        ``deadline_slot = t + D_i``, where ``D_i`` defaults to the
        period (Section 5).  This is exactly the paper's accounting:
        "the scheduling is not affected by t_latency"; the fixed
        pipeline latency is charged to the *user-level* delay
        (Equation 3), not to the EDF schedule.  With implicit deadlines
        the utilisation test is then exact: synchronous sets at U = 1
        are schedulable with zero slack.
        """
        if not self.releases_at(slot):
            raise ValueError(
                f"connection {self.connection_id} does not release at slot {slot}"
            )
        return Message(
            self.source,
            self.destinations,
            TrafficClass.RT_CONNECTION,
            self.size_slots,
            slot,
            slot + self.relative_deadline_slots,
            self.connection_id,
            period_slots=self.period_slots,
        )

    def next_release_at_or_after(self, slot: int) -> int:
        """First release slot at or after ``slot``."""
        if slot <= self.phase_slots:
            return self.phase_slots
        elapsed = slot - self.phase_slots
        periods = -(-elapsed // self.period_slots)  # ceil division
        return self.phase_slots + periods * self.period_slots
