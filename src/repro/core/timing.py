"""The timing equations of Sections 4-6 (Equations 1-6).

:class:`NetworkTiming` binds a ring topology, a link rate model, and the
slot design parameters together and exposes every analytical quantity the
paper derives:

* Equation (1): clock hand-over time ``t_handover = P * L * D``;
* Equation (2): minimum slot length ``t_minslot = N * t_node + t_prop``;
* Equation (3): maximum user-perceived delay
  ``t_maxdelay = t_deadline + t_latency``;
* Equation (4): worst-case protocol latency
  ``t_latency = 2 * t_slot + t_handover_max``;
* Equation (5): EDF feasibility ``sum(e_i / P_i) <= U_max``;
* Equation (6): worst-case utilisation
  ``U_max = t_slot / (t_slot + t_handover_max)``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from functools import cached_property

from repro.core.connection import LogicalRealTimeConnection
from repro.phy.constants import (
    DEFAULT_NODE_DELAY_S,
    DEFAULT_SLOT_PAYLOAD_BYTES,
)
from repro.phy.link import FibreRibbonLink
from repro.ring.topology import RingTopology


@dataclass(frozen=True)
class NetworkTiming:
    """Derived timing model of one CCR-EDF network configuration.

    Parameters
    ----------
    topology:
        Ring geometry (node count, link lengths).
    link:
        Fibre-ribbon rate model.
    slot_payload_bytes:
        Data payload per slot; determines the nominal slot duration.
    node_delay_s:
        Per-node transit/append delay ``t_node`` of the control packet
        during the collection phase (Equation 2).
    """

    topology: RingTopology
    link: FibreRibbonLink = field(default_factory=FibreRibbonLink)
    slot_payload_bytes: int = DEFAULT_SLOT_PAYLOAD_BYTES
    node_delay_s: float = DEFAULT_NODE_DELAY_S

    def __post_init__(self) -> None:
        if self.slot_payload_bytes < 1:
            raise ValueError(
                f"slot payload must be >= 1 byte, got {self.slot_payload_bytes}"
            )
        if self.node_delay_s < 0:
            raise ValueError(
                f"node delay must be non-negative, got {self.node_delay_s}"
            )

    # ------------------------------------------------------------------
    # Equation (1): hand-over time
    # ------------------------------------------------------------------

    def handover_time_s(self, hops: int) -> float:
        """Equation (1): ``t_handover = P * L * D`` for ``D = hops``.

        Uses the mean link length ``L``; for heterogeneous rings prefer
        :meth:`RingTopology.handover_delay_s`, which sums exact segment
        delays.  ``hops = 0`` (master keeps the clock) costs nothing.
        """
        n = self.topology.n_nodes
        if not (0 <= hops <= n - 1):
            raise ValueError(f"hop count must be in [0, {n - 1}], got {hops}")
        p = self.topology.segments[0].delay_s_per_m
        return p * self.topology.mean_link_length_m * hops

    @cached_property
    def max_handover_time_s(self) -> float:
        """Worst-case hand-over, ``D = N - 1`` (hand-over to the upstream
        neighbour)."""
        return self.topology.max_handover_delay_s

    # ------------------------------------------------------------------
    # Equation (2): minimum slot length
    # ------------------------------------------------------------------

    @cached_property
    def effective_node_delay_s(self) -> float:
        """The per-node collection-phase delay ``t_node`` of Equation (2).

        Each node both forwards the packet (processing/transit latency,
        :attr:`node_delay_s`) and *appends its own request* -- the
        ``5 + 2N`` bits of Figure 4, clocked at the control-channel bit
        rate.  The append time grows with ``N``, which is why large rings
        need longer slots even before propagation delay matters.
        """
        from repro.phy.packets import PRIORITY_FIELD_BITS

        request_bits = PRIORITY_FIELD_BITS + 2 * self.topology.n_nodes
        return self.node_delay_s + self.link.control_transfer_time_s(request_bits)

    @cached_property
    def min_slot_length_s(self) -> float:
        """Equation (2): ``t_minslot = N * t_node + t_prop``.

        The collection phase (the request packet visiting every node,
        each appending its request, plus propagating around the whole
        ring) must finish before the data transmission of the current
        slot ends, since arbitration for slot ``k + 1`` runs during slot
        ``k`` (Figure 3).  ``t_node`` is :attr:`effective_node_delay_s`.

        Two physically required terms the paper's formula leaves
        implicit are included: the collection packet's start bit, and
        the serialisation time of the distribution packet, which must
        *begin* after the collection completes and *end* exactly at the
        slot boundary (Section 3) -- verified event-by-event in
        :mod:`repro.sim.control_channel`.
        """
        from repro.phy.packets import distribution_packet_length_bits

        n = self.topology.n_nodes
        start_bit = self.link.control_transfer_time_s(1)
        distribution = self.link.control_transfer_time_s(
            distribution_packet_length_bits(n)
        )
        return (
            start_bit
            + n * self.effective_node_delay_s
            + self.topology.ring_propagation_delay_s
            + distribution
        )

    @cached_property
    def nominal_slot_length_s(self) -> float:
        """Slot duration implied by the payload size alone."""
        return self.link.slot_duration_s(self.slot_payload_bytes)

    @cached_property
    def slot_length_s(self) -> float:
        """Operating slot length: the payload time, but never below the
        Equation (2) minimum."""
        return max(self.nominal_slot_length_s, self.min_slot_length_s)

    # ------------------------------------------------------------------
    # Equations (3) and (4): latency bounds
    # ------------------------------------------------------------------

    @cached_property
    def worst_case_latency_s(self) -> float:
        """Equation (4): ``t_latency = 2 * t_slot + t_handover_max``.

        One slot because an arrival can just miss the running slot's
        arbitration, one slot for the arbitration itself, plus the worst
        hand-over gap before the message's slot begins.
        """
        return 2.0 * self.slot_length_s + self.max_handover_time_s

    def max_delay_s(self, deadline_s: float) -> float:
        """Equation (3): ``t_maxdelay = t_deadline + t_latency``.

        The deadline drives the EDF schedule; the user additionally
        perceives the fixed protocol latency on top of it.
        """
        if deadline_s < 0:
            raise ValueError(f"deadline must be non-negative, got {deadline_s}")
        return deadline_s + self.worst_case_latency_s

    # ------------------------------------------------------------------
    # Equations (5) and (6): utilisation bound and feasibility test
    # ------------------------------------------------------------------

    @cached_property
    def u_max(self) -> float:
        """Equation (6): ``U_max = t_slot / (t_slot + t_handover_max)``.

        The guaranteed fraction of time that carries data when every slot
        suffers the worst hand-over gap; also the worst-case throughput
        fraction at full load.  Strictly below 1 on any ring with
        non-zero propagation delay.
        """
        return self.slot_length_s / (self.slot_length_s + self.max_handover_time_s)

    def total_utilisation(
        self, connections: Iterable[LogicalRealTimeConnection]
    ) -> float:
        """``sum(e_i / P_i)`` over a set of logical real-time connections."""
        return sum(c.utilisation for c in connections)

    def edf_feasible(
        self, connections: Iterable[LogicalRealTimeConnection]
    ) -> bool:
        """Equation (5): the basic EDF feasibility/admission test.

        A connection set is schedulable (one message per slot, worst-case
        hand-over between every pair of slots) iff its total utilisation
        does not exceed ``U_max``.
        """
        return self.total_utilisation(connections) <= self.u_max

    # ------------------------------------------------------------------
    # Simulator coupling helpers
    # ------------------------------------------------------------------

    def effective_slot_rate_hz(self) -> float:
        """Guaranteed slot completion rate at worst-case hand-over [1/s]."""
        return 1.0 / (self.slot_length_s + self.max_handover_time_s)

    def guaranteed_data_rate_bit_per_s(self) -> float:
        """Worst-case guaranteed data throughput (no spatial reuse)."""
        return self.u_max * self.link.data_rate_bit_per_s
