"""Per-node transmit queues with strict class precedence.

Each node keeps one queue per traffic class.  Within the two deadline-
bearing classes, the queue is ordered earliest-deadline-first (ties broken
by message id, i.e. arrival order); the non-real-time queue is FIFO.
Under a non-default :class:`~repro.core.policy.SchedulingPolicy` the
deadline-bearing classes order by the policy's key instead (period for
rate monotonic, release slot for FIFO); non-real-time stays FIFO under
every policy.

Section 3 defines the selection rule a node applies when composing its
collection-phase request: "Observed locally in a node, best effort
messages will only be requested to be sent if there is no logical
real-time connection message queued.  The same applies to non real-time
messages."  :meth:`NodeQueues.head` implements exactly that rule.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.core.messages import Message, MessageStatus
from repro.core.priorities import TrafficClass

if TYPE_CHECKING:  # policy imports messages; keep the cycle typing-only
    from repro.core.policy import SchedulingPolicy

#: Heap entries are plain ``(primary key, msg_id, message)`` tuples:
#: deadline-ordered classes use the deadline (or the policy's queue key)
#: as primary key, the FIFO class a running counter.  ``msg_id`` is globally unique, so tuple
#: comparison never reaches the (incomparable) message itself and every
#: comparison runs at C speed -- this sits on the simulator's hot path.
_QueueEntry = tuple[int, int, Message]


#: Statuses under which a message still occupies its queue slot.
_LIVE = (MessageStatus.PENDING, MessageStatus.IN_TRANSIT)

#: Statuses under which a message no longer occupies its queue slot.
_DELIVERED = MessageStatus.DELIVERED
_DROPPED = MessageStatus.DROPPED


class NodeQueues:
    """The three transmit queues of one node.

    Messages stay in their queue until fully transmitted (multi-slot
    messages keep their place and their deadline ordering between
    packets) or dropped.

    The head lookup is memoised: :meth:`head` runs on the simulator's
    per-slot hot path once per node, and between queue mutations the
    answer only changes when the cached head itself finishes (delivered
    or dropped) -- which the cheap status check below detects, since a
    finished non-head message can never promote anything above the head.
    """

    __slots__ = (
        "node",
        "_policy",
        "_rt",
        "_be",
        "_nrt",
        "_heaps",
        "_fifo_counter",
        "_cached_head",
        "_head_valid",
    )

    def __init__(self, node: int, policy: "SchedulingPolicy | None" = None) -> None:
        self.node = node
        # A SchedulingPolicy whose queue_key orders the deadline-bearing
        # classes; None (the default, and what EDF resolves to) keeps
        # the plain earliest-deadline order with zero per-enqueue cost.
        self._policy = policy
        self._rt: list[_QueueEntry] = []
        self._be: list[_QueueEntry] = []
        self._nrt: list[_QueueEntry] = []
        self._heaps = {
            TrafficClass.RT_CONNECTION: self._rt,
            TrafficClass.BEST_EFFORT: self._be,
            TrafficClass.NON_REAL_TIME: self._nrt,
        }
        self._fifo_counter = 0
        self._cached_head: Message | None = None
        self._head_valid = False

    # ------------------------------------------------------------------

    def enqueue(self, message: Message) -> None:
        """Insert a message into the queue of its class."""
        if message.source != self.node:
            raise ValueError(
                f"message {message.msg_id} originates at node {message.source}, "
                f"not at this node ({self.node})"
            )
        if message.status is not MessageStatus.PENDING:
            raise ValueError(
                f"only pending messages may be enqueued, got {message.status.value}"
            )
        if message.deadline_slot is not None:
            if self._policy is None:
                key = message.deadline_slot
            else:
                key = self._policy.queue_key(message)
        else:
            key = self._fifo_counter
            self._fifo_counter += 1
        heapq.heappush(
            self._heaps[message.traffic_class], (key, message.msg_id, message)
        )
        self._head_valid = False

    def _head_of(self, traffic_class: TrafficClass) -> Message | None:
        """Head of one class queue, discarding finished entries lazily."""
        heap = self._heaps[traffic_class]
        while heap:
            msg = heap[0][2]
            st = msg.status
            if st is _DELIVERED or st is _DROPPED:
                heapq.heappop(heap)
                continue
            return msg
        return None

    def head(self) -> Message | None:
        """The locally highest-priority message (the one to request).

        Strict class precedence: any RT-connection message beats any
        best-effort message beats any non-real-time message; within a
        class the earliest deadline (or FIFO order) wins.
        """
        if self._head_valid:
            msg = self._cached_head
            if msg is None:
                return None
            st = msg.status
            if st is not _DELIVERED and st is not _DROPPED:
                return msg
        msg = None
        for heap in (self._rt, self._be, self._nrt):
            while heap:
                candidate = heap[0][2]
                st = candidate.status
                if st is _DELIVERED or st is _DROPPED:
                    heapq.heappop(heap)
                    continue
                msg = candidate
                break
            if msg is not None:
                break
        self._cached_head = msg
        self._head_valid = True
        return msg

    def head_of_class(self, traffic_class: TrafficClass) -> Message | None:
        """Head of a specific class queue (used by spatial-reuse probing)."""
        return self._head_of(traffic_class)

    # ------------------------------------------------------------------

    def drop_late(self, current_slot: int) -> list[Message]:
        """Drop every queued deadline-bearing message that is already late.

        Returns the dropped messages.  Whether to drop or to keep sending
        late messages is a policy choice; the simulator exposes both, and
        this helper implements the drop policy.
        """
        dropped: list[Message] = []
        for traffic_class in (TrafficClass.RT_CONNECTION, TrafficClass.BEST_EFFORT):
            heap = self._heaps[traffic_class]
            if not heap:
                continue
            keep: list[_QueueEntry] = []
            for entry in heap:
                msg = entry[2]
                if msg.status in (MessageStatus.DELIVERED, MessageStatus.DROPPED):
                    continue
                if msg.is_late(current_slot):
                    msg.drop()
                    dropped.append(msg)
                else:
                    keep.append(entry)
            if len(keep) == len(heap):
                # Nothing dropped and nothing finished: the heap is
                # unchanged, so skip the copy + re-heapify (this method
                # runs every slot under the drop-late policy).
                continue
            heap[:] = keep
            heapq.heapify(heap)
            self._head_valid = False
        return dropped

    def purge(self) -> list[Message]:
        """Drop every live queued message and empty all three queues.

        Models a node crash/rejoin: a repaired node restarts with empty
        queues, so whatever it had buffered is lost and must be
        re-released by the application.  Returns the dropped messages so
        the caller can account them.
        """
        purged: list[Message] = []
        for heap in self._heaps.values():
            for entry in heap:
                msg = entry[2]
                if msg.status in (MessageStatus.DELIVERED, MessageStatus.DROPPED):
                    continue
                msg.drop()
                purged.append(msg)
            heap.clear()
        self._head_valid = False
        return purged

    def pending_count(self, traffic_class: TrafficClass | None = None) -> int:
        """Number of live (pending or in-transit) messages queued."""
        classes = (
            [traffic_class]
            if traffic_class is not None
            else list(self._heaps.keys())
        )
        count = 0
        for tc in classes:
            for entry in self._heaps[tc]:
                if entry[2].status in (
                    MessageStatus.PENDING,
                    MessageStatus.IN_TRANSIT,
                ):
                    count += 1
        return count

    def pending_messages(self) -> list[Message]:
        """All live messages across the three queues (unordered)."""
        out: list[Message] = []
        for heap in self._heaps.values():
            for entry in heap:
                if entry[2].status in (
                    MessageStatus.PENDING,
                    MessageStatus.IN_TRANSIT,
                ):
                    out.append(entry[2])
        return out

    @property
    def is_empty(self) -> bool:
        """Whether no live message is queued in any class."""
        return self.head() is None
