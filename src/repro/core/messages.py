"""Message model.

A *message* is the user-level unit of traffic: a payload of one or more
slots' worth of data from a source node to one or more destinations,
belonging to one of the three traffic classes.  Multi-slot messages are
transmitted one data-packet (slot) at a time; the message is delivered
when its last packet arrives.

Deadlines and laxities are expressed in slots, the network's smallest
schedulable time unit (Section 5).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.core.priorities import TrafficClass

_message_ids = itertools.count()


class MessageStatus(enum.Enum):
    """Lifecycle of a message in a node's transmit queue."""

    #: Queued, no packet sent yet.
    PENDING = "pending"
    #: Some but not all packets sent.
    IN_TRANSIT = "in_transit"
    #: All packets delivered.
    DELIVERED = "delivered"
    #: Dropped without (full) delivery (e.g. deadline policy or fault).
    DROPPED = "dropped"


@dataclass(slots=True)
class Message:
    """One user message.

    Parameters
    ----------
    source:
        Originating node id.
    destinations:
        Destination node ids; more than one encodes multicast, all other
        nodes encode broadcast.
    traffic_class:
        One of the three classes of Table 1.
    size_slots:
        Number of slots (data-packets) the message occupies; ``e_i`` in
        the schedulability analysis.
    created_slot:
        Slot index at which the message entered its queue.
    deadline_slot:
        Absolute deadline, in slots, by which the *last* packet must have
        been transmitted.  ``None`` for non-real-time messages, which have
        no deadline.
    connection_id:
        For messages belonging to a logical real-time connection, the id
        of that connection; ``None`` otherwise.
    """

    source: int
    destinations: frozenset[int]
    traffic_class: TrafficClass
    size_slots: int
    created_slot: int
    deadline_slot: int | None = None
    connection_id: int | None = None
    msg_id: int = field(default_factory=lambda: next(_message_ids))

    # --- mutable transmission state -----------------------------------
    sent_slots: int = 0
    status: MessageStatus = MessageStatus.PENDING
    #: Slot index in which the final packet was transmitted (set on
    #: delivery).
    completed_slot: int | None = None
    #: Release period of the connection that released this message, in
    #: slots; ``None`` for aperiodic traffic.  Static-priority policies
    #: (rate monotonic) rank messages by it.  Declared last so existing
    #: positional construction sites (incl. the compiled kernel's state
    #: re-materialisation) are unaffected.
    period_slots: int | None = None

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ValueError("a message needs at least one destination")
        if self.source in self.destinations:
            raise ValueError(f"node {self.source} cannot send to itself")
        if self.size_slots < 1:
            raise ValueError(f"message size must be >= 1 slot, got {self.size_slots}")
        if self.traffic_class is TrafficClass.NON_REAL_TIME:
            if self.deadline_slot is not None:
                raise ValueError("non-real-time messages carry no deadline")
        else:
            if self.deadline_slot is None:
                raise ValueError(
                    f"{self.traffic_class.name} messages require a deadline"
                )
            if self.deadline_slot < self.created_slot:
                raise ValueError(
                    f"deadline {self.deadline_slot} precedes creation "
                    f"slot {self.created_slot}"
                )
        if (self.connection_id is not None) != (
            self.traffic_class is TrafficClass.RT_CONNECTION
        ):
            raise ValueError(
                "exactly the RT_CONNECTION messages must carry a connection id"
            )
        if self.period_slots is not None and self.period_slots < 1:
            raise ValueError(
                f"release period must be >= 1 slot, got {self.period_slots}"
            )

    # ------------------------------------------------------------------

    @property
    def remaining_slots(self) -> int:
        """Packets still to transmit."""
        return self.size_slots - self.sent_slots

    def laxity(self, current_slot: int) -> int | None:
        """Slots until the deadline, accounting for remaining work.

        Laxity is ``deadline - current_slot - remaining_slots + 1``: the
        number of slots the message can still afford to wait and meet its
        deadline (0 = must be granted every slot from now on).  ``None``
        for non-real-time messages.
        """
        if self.deadline_slot is None:
            return None
        return self.deadline_slot - current_slot - self.remaining_slots + 1

    def is_late(self, current_slot: int) -> bool:
        """Whether the message can no longer meet its deadline."""
        lax = self.laxity(current_slot)
        return lax is not None and lax < 0

    def record_sent_packet(self, slot: int) -> None:
        """Account one transmitted packet; completes the message if last."""
        if self.status in (MessageStatus.DELIVERED, MessageStatus.DROPPED):
            raise ValueError(f"message {self.msg_id} is already {self.status.value}")
        if self.remaining_slots <= 0:
            raise ValueError(f"message {self.msg_id} has no packets left to send")
        self.sent_slots += 1
        if self.remaining_slots == 0:
            self.status = MessageStatus.DELIVERED
            self.completed_slot = slot
        else:
            self.status = MessageStatus.IN_TRANSIT

    def drop(self) -> None:
        """Abandon the message (drop-late policy, faults)."""
        if self.status is MessageStatus.DELIVERED:
            raise ValueError(f"message {self.msg_id} was already delivered")
        self.status = MessageStatus.DROPPED

    @property
    def is_multicast(self) -> bool:
        """Whether the message addresses more than one destination."""
        return len(self.destinations) > 1

    def met_deadline(self) -> bool | None:
        """Whether a delivered message met its deadline.

        ``None`` if the message has no deadline or is not yet delivered.
        """
        if self.deadline_slot is None or self.completed_slot is None:
            return None
        return self.completed_slot <= self.deadline_slot
