"""Clock hand-over strategies.

The defining novelty of CCR-EDF is *which node clocks the next slot*:

* :class:`EdfHandover` -- the paper's strategy: the node holding the
  globally highest-priority message becomes master.  Because the master's
  clock break is the only point on the ring a transmission cannot cross,
  and the highest-priority message never needs to cross its own source,
  the most urgent message in the system is always feasible -- no priority
  inversion.  The cost: the inter-slot gap varies with the hand-over
  distance ``D`` (Equation 1), between 0 (same master) and ``N - 1`` hops.

* :class:`RoundRobinHandover` -- the baseline strategy of CC-FPR
  (refs [4], [9]): mastership always moves to the next downstream node.
  The gap is constant (one hop), but the master can sit in the path of the
  highest-priority message, preempting it -- the priority inversion that
  makes the worst-case analysis of [5] "pessimistic to such a degree that
  the worst-case analysis is of little use".
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.arbitration import ArbitrationResult
from repro.ring.topology import RingTopology


class ClockHandoverStrategy(ABC):
    """Decides the master of slot ``k + 1`` after slot ``k``'s arbitration."""

    @abstractmethod
    def next_master(
        self,
        topology: RingTopology,
        current_master: int,
        result: ArbitrationResult,
    ) -> int:
        """Node that assumes clocking responsibility for the next slot."""

    def gap_s(
        self, topology: RingTopology, current_master: int, next_master: int
    ) -> float:
        """Inter-slot clock gap for this hand-over [s] (Equation 1)."""
        return topology.handover_delay_s(current_master, next_master)


class EdfHandover(ClockHandoverStrategy):
    """CCR-EDF hand-over: mastership follows the highest-priority message.

    "In the following slot, the clocking responsibility is handed over to
    the node that has the highest priority message in that slot.  This may
    be another node or the same as in the previous slot." (Section 2)
    """

    def next_master(
        self,
        topology: RingTopology,
        current_master: int,
        result: ArbitrationResult,
    ) -> int:
        if result.master != current_master:
            raise ValueError(
                f"arbitration result was produced by master {result.master}, "
                f"but the current master is {current_master}"
            )
        return result.hp_node


class RoundRobinHandover(ClockHandoverStrategy):
    """CC-FPR hand-over: mastership always moves one node downstream.

    "In the implementation of distributed clock strategy found in [9] and
    in [4], hand over is always to the next downstream node.  The
    advantage of this is simplicity; the clock hand over time, between
    slots, is constant."
    """

    def next_master(
        self,
        topology: RingTopology,
        current_master: int,
        result: ArbitrationResult,
    ) -> int:
        return topology.downstream(current_master)
