"""The CCR-EDF protocol core: the paper's primary contribution.

Modules:

* :mod:`repro.core.priorities` -- traffic classes and the Table 1
  allocation of the 5-bit priority field;
* :mod:`repro.core.mapping` -- laxity (time-until-deadline) to priority
  mapping functions (the logarithmic map the paper assumes, plus a linear
  map used for the ablation study);
* :mod:`repro.core.messages` -- message and packet model;
* :mod:`repro.core.connection` -- logical real-time connections;
* :mod:`repro.core.queues` -- per-node, per-class transmit queues with the
  strict class precedence of Section 3;
* :mod:`repro.core.timing` -- the timing equations (1)-(6);
* :mod:`repro.core.arbitration` -- the master's request sorting and the
  greedy spatial-reuse grant sweep;
* :mod:`repro.core.clocking` -- clock hand-over strategies (the paper's
  highest-priority hand-over and the round-robin baseline);
* :mod:`repro.core.admission` -- runtime admission control over logical
  real-time connections (Section 6);
* :mod:`repro.core.protocol` -- the per-slot protocol state machine that
  ties arbitration, clocking, and queues together.
"""

from repro.core.priorities import (
    TrafficClass,
    PRIO_NOTHING_TO_SEND,
    PRIO_NON_REAL_TIME,
    BEST_EFFORT_RANGE,
    RT_CONNECTION_RANGE,
    priority_to_class,
    class_priority_range,
)
from repro.core.mapping import (
    LaxityMapping,
    LogarithmicMapping,
    LinearMapping,
)
from repro.core.messages import Message, MessageStatus
from repro.core.connection import LogicalRealTimeConnection
from repro.core.queues import NodeQueues
from repro.core.timing import NetworkTiming
from repro.core.arbitration import Arbiter, ArbitrationResult, Grant
from repro.core.clocking import (
    ClockHandoverStrategy,
    EdfHandover,
    RoundRobinHandover,
)
from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.protocol import CcrEdfProtocol, SlotOutcome

__all__ = [
    "TrafficClass",
    "PRIO_NOTHING_TO_SEND",
    "PRIO_NON_REAL_TIME",
    "BEST_EFFORT_RANGE",
    "RT_CONNECTION_RANGE",
    "priority_to_class",
    "class_priority_range",
    "LaxityMapping",
    "LogarithmicMapping",
    "LinearMapping",
    "Message",
    "MessageStatus",
    "LogicalRealTimeConnection",
    "NodeQueues",
    "NetworkTiming",
    "Arbiter",
    "ArbitrationResult",
    "Grant",
    "ClockHandoverStrategy",
    "EdfHandover",
    "RoundRobinHandover",
    "AdmissionController",
    "AdmissionDecision",
    "CcrEdfProtocol",
    "SlotOutcome",
]
