"""Laxity-to-priority mapping functions.

Section 3: "The time until deadline (referred to as laxity) of a message
is mapped, with a certain function, to be expressed within the limitation
of the priority field ... A shorter laxity of the packet implies a higher
priority of the request.  For the following discussion, a logarithmic
mapping function is assumed.  This mapping gives higher resolution of
laxity, the closer to its deadline a packet gets."

The laxity unit is the *slot* -- the smallest schedulable time unit
(Section 5).  A mapping compresses a laxity (a non-negative integer number
of slots until deadline) into the handful of levels a traffic class owns
in the 5-bit field; the master then schedules by mapped priority, which is
EDF up to the quantisation of the map.  The paper leaves the exact
function open ("further discussion of deadline to priority mapping
function is out of the scope of this paper"); we provide the assumed
logarithmic map plus a linear one so the ablation benchmark (experiment
S8) can quantify the difference.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.core.priorities import TrafficClass, class_priority_range


class LaxityMapping(ABC):
    """Maps a message laxity in slots to a 5-bit priority level.

    Implementations must be monotone: a shorter laxity never maps to a
    lower priority (property-tested in the suite).
    """

    @abstractmethod
    def priority_for(self, laxity_slots: int, traffic_class: TrafficClass) -> int:
        """Priority level for a message of the given laxity and class.

        ``laxity_slots`` may be negative for an already-late message; late
        messages saturate at the class's most urgent level.
        """

    def bucket_bounds(
        self, priority: int, traffic_class: TrafficClass
    ) -> tuple[int | None, int | None]:
        """Inclusive laxity interval ``(lo, hi)`` mapped to ``priority``.

        ``hi`` is ``None`` for the class's least-urgent level, whose
        bucket is unbounded above.  ``lo`` is ``None`` for the class's
        *most* urgent level: every late (negative-laxity) message
        saturates there per the :meth:`priority_for` contract, so that
        bucket is unbounded below -- it is *not* ``[0, ...]``, which
        this method used to claim.  Useful for analysis and plotting;
        computed by scanning, so intended for small ranges only.
        """
        lo_p, hi_p = class_priority_range(traffic_class)
        if not (lo_p <= priority <= hi_p):
            raise ValueError(
                f"priority {priority} outside class range [{lo_p}, {hi_p}]"
            )
        if priority == hi_p:
            # The saturation bucket.  Scan only for its upper end; when
            # the class owns a single level (e.g. non-real-time), the
            # bucket is the whole laxity axis.
            if lo_p == hi_p:
                return (None, None)
            hi_end = 0
            while self.priority_for(hi_end + 1, traffic_class) == hi_p:
                hi_end += 1
            return (None, hi_end)
        lo_bound: int | None = None
        laxity = 0
        while True:
            p = self.priority_for(laxity, traffic_class)
            if p == priority and lo_bound is None:
                lo_bound = laxity
            if p < priority:
                if lo_bound is None:
                    raise ValueError(
                        f"priority {priority} is never produced by this mapping"
                    )
                return (lo_bound, laxity - 1)
            if p == lo_p:
                # Reached the terminal (least urgent) bucket.
                if priority == lo_p:
                    if lo_bound is None:
                        lo_bound = laxity
                    return (lo_bound, None)
                if lo_bound is not None:
                    return (lo_bound, laxity - 1)
                raise ValueError(
                    f"priority {priority} is never produced by this mapping"
                )
            laxity += 1


@dataclass(frozen=True)
class LogarithmicMapping(LaxityMapping):
    """The paper's assumed logarithmic map.

    Level ``k`` below the class's most urgent level covers laxities in
    ``[2^k - 1, 2^(k+1) - 2]``: bucket widths double as laxity grows, so
    resolution is finest close to the deadline.  With a 15-level class
    range the map distinguishes laxities out to ``2^15 - 2`` slots before
    saturating at the least-urgent level.
    """

    def priority_for(self, laxity_slots: int, traffic_class: TrafficClass) -> int:
        lo, hi = class_priority_range(traffic_class)
        if laxity_slots <= 0:
            return hi
        bucket = int(math.log2(laxity_slots + 1))
        return max(lo, hi - bucket)


@dataclass(frozen=True)
class LinearMapping(LaxityMapping):
    """Uniform-width buckets over a fixed laxity horizon (ablation).

    All laxities beyond ``horizon_slots`` saturate at the class's least
    urgent level.  Compared with the logarithmic map this wastes levels on
    far-away deadlines and cannot distinguish urgencies near the deadline
    once ``horizon_slots`` is large -- the behaviour experiment S8
    quantifies.
    """

    #: Laxity (in slots) at and beyond which priority saturates low.
    horizon_slots: int = 1024

    def __post_init__(self) -> None:
        if self.horizon_slots < 1:
            raise ValueError(
                f"laxity horizon must be at least 1 slot, got {self.horizon_slots}"
            )

    def priority_for(self, laxity_slots: int, traffic_class: TrafficClass) -> int:
        lo, hi = class_priority_range(traffic_class)
        if laxity_slots <= 0:
            return hi
        levels = hi - lo + 1
        bucket = laxity_slots * levels // self.horizon_slots
        return max(lo, hi - bucket)
