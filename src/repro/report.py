"""Result export: simulation reports and sweeps to CSV.

Experiment pipelines want machine-readable output next to the printed
tables; this module flattens :class:`~repro.sim.metrics.SimulationReport`
objects (and whole parameter sweeps of them) into CSV files with plain
``csv`` from the standard library -- no plotting dependencies.
"""

from __future__ import annotations

import csv
import math
from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.core.priorities import TrafficClass
from repro.obs.manifest import RunManifest, manifest_path_for
from repro.sim.metrics import SimulationReport

#: The single textual representation of a missing/undefined numeric value
#: in every CSV this module writes.  Exactly this spelling: it is what
#: ``float("NaN")`` parses from, what pandas/numpy recognise by default,
#: and it avoids the ``nan``/``NAN``/empty-cell zoo ``str(float)`` and
#: ad-hoc writers otherwise produce.
CSV_NAN = "NaN"


def _csv_value(value: object) -> object:
    """Normalise one cell: NaN floats become :data:`CSV_NAN`."""
    if isinstance(value, float) and math.isnan(value):
        return CSV_NAN
    return value


def _csv_row(row: Mapping[str, object]) -> dict[str, object]:
    return {key: _csv_value(value) for key, value in row.items()}

#: Columns of the flat report row, in order.
REPORT_FIELDS: tuple[str, ...] = (
    "n_nodes",
    "slots_simulated",
    "wall_time_s",
    "utilisation",
    "packets_sent",
    "spatial_reuse_factor",
    "mean_gap_s",
    "break_denials",
    "wasted_grants",
    "rt_released",
    "rt_delivered",
    "rt_missed",
    "rt_miss_ratio",
    "rt_mean_latency_slots",
    "be_released",
    "be_delivered",
    "be_miss_ratio",
    "nrt_released",
    "nrt_delivered",
    # Availability section (all zero / 1.0 / NaN on fault-free runs).
    "fault_events",
    "recoveries",
    "slots_lost_to_faults",
    "availability",
    "mean_time_to_recover_s",
    "node_failures",
    "node_rejoins",
    "node_downtime_slots",
    "rt_missed_in_fault_window",
)


def report_row(report: SimulationReport) -> dict[str, object]:
    """Flatten one report into a dict matching :data:`REPORT_FIELDS`."""
    rt = report.class_stats(TrafficClass.RT_CONNECTION)
    be = report.class_stats(TrafficClass.BEST_EFFORT)
    nrt = report.class_stats(TrafficClass.NON_REAL_TIME)
    avail = report.availability_stats
    return {
        "n_nodes": report.n_nodes,
        "slots_simulated": report.slots_simulated,
        "wall_time_s": report.wall_time_s,
        "utilisation": report.utilisation,
        "packets_sent": report.packets_sent,
        "spatial_reuse_factor": report.spatial_reuse_factor,
        "mean_gap_s": report.mean_gap_s,
        "break_denials": report.break_denials,
        "wasted_grants": report.wasted_grants,
        "rt_released": rt.released,
        "rt_delivered": rt.delivered,
        "rt_missed": rt.deadline_missed,
        "rt_miss_ratio": rt.deadline_miss_ratio,
        "rt_mean_latency_slots": rt.mean_latency_slots,
        "be_released": be.released,
        "be_delivered": be.delivered,
        "be_miss_ratio": be.deadline_miss_ratio,
        "nrt_released": nrt.released,
        "nrt_delivered": nrt.delivered,
        "fault_events": avail.total_fault_events,
        "recoveries": avail.recoveries,
        "slots_lost_to_faults": avail.slots_lost,
        "availability": report.availability,
        "mean_time_to_recover_s": avail.mean_time_to_recover_s,
        "node_failures": avail.node_failures,
        "node_rejoins": avail.node_rejoins,
        "node_downtime_slots": avail.node_downtime_slots,
        "rt_missed_in_fault_window": rt.deadline_missed_in_fault_window,
    }


def write_report_csv(
    path: str | Path,
    reports: Sequence[SimulationReport],
    parameters: Sequence[Mapping[str, object]] | None = None,
    manifest: "RunManifest | None" = None,
) -> Path:
    """Write one CSV row per report.

    ``parameters`` optionally supplies per-report sweep parameters
    (e.g. ``{"protocol": ..., "target_u": ...}``); their keys become
    leading columns.  All reports must share the same parameter keys.
    Undefined numeric values are written as :data:`CSV_NAN`.

    ``manifest`` optionally writes a provenance record next to the CSV
    (``<name>.csv.manifest.json``), so the artifact carries the scenario,
    seed and code revision that produced it.
    """
    path = Path(path)
    if parameters is not None and len(parameters) != len(reports):
        raise ValueError(
            f"{len(parameters)} parameter rows for {len(reports)} reports"
        )
    param_keys: list[str] = []
    if parameters:
        param_keys = list(parameters[0].keys())
        for p in parameters:
            if list(p.keys()) != param_keys:
                raise ValueError("all parameter rows must share the same keys")
        overlap = set(param_keys) & set(REPORT_FIELDS)
        if overlap:
            raise ValueError(f"parameter keys shadow report fields: {overlap}")

    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=param_keys + list(REPORT_FIELDS))
        writer.writeheader()
        for i, report in enumerate(reports):
            row = dict(parameters[i]) if parameters else {}
            row.update(report_row(report))
            writer.writerow(_csv_row(row))
    if manifest is not None:
        manifest.write(manifest_path_for(path))
    return path


def write_rows_csv(
    path: str | Path,
    fieldnames: Sequence[str],
    rows: Sequence[Mapping[str, object]],
    manifest: "RunManifest | None" = None,
) -> Path:
    """Write pre-flattened rows as CSV under this module's conventions.

    The campaign reporter (and any other producer of long-form rows)
    funnels through here so every CSV in the repo shares one NaN
    spelling (:data:`CSV_NAN`) and one manifest-sibling convention.
    Rows may omit trailing fields but must not carry unknown keys.
    """
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(fieldnames))
        writer.writeheader()
        for row in rows:
            unknown = set(row) - set(fieldnames)
            if unknown:
                raise ValueError(f"row carries unknown fields: {sorted(unknown)}")
            writer.writerow(_csv_row(row))
    if manifest is not None:
        manifest.write(manifest_path_for(path))
    return path


def write_connection_csv(
    path: str | Path,
    report: SimulationReport,
    manifest: "RunManifest | None" = None,
) -> Path:
    """One CSV row per logical real-time connection in a report.

    Undefined numeric values are written as :data:`CSV_NAN`;
    ``manifest`` optionally writes a provenance sibling as in
    :func:`write_report_csv`.
    """
    path = Path(path)
    fields = (
        "connection_id",
        "released",
        "delivered",
        "dropped",
        "deadline_missed",
        "miss_ratio",
        "mean_latency_slots",
        "jitter_slots",
    )
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for cid in sorted(report.per_connection):
            s = report.per_connection[cid]
            writer.writerow(
                _csv_row(
                    {
                        "connection_id": cid,
                        "released": s.released,
                        "delivered": s.delivered,
                        "dropped": s.dropped,
                        "deadline_missed": s.deadline_missed,
                        "miss_ratio": s.deadline_miss_ratio,
                        "mean_latency_slots": s.mean_latency_slots,
                        "jitter_slots": s.jitter_slots,
                    }
                )
            )
    if manifest is not None:
        manifest.write(manifest_path_for(path))
    return path
