"""Replaying a JSONL event log back into run totals.

The event log is only trustworthy if it is a *complete* record: replaying
it must reproduce the totals the run itself reported.
:func:`replay_events` folds a stream of event dicts into a
:class:`LogSummary` whose released/delivered/missed/dropped counts, fault
tally, recovery count and slot coverage are directly comparable to a
:class:`~repro.sim.metrics.SimulationReport` -- the integration tests
assert equality, and ``repro inspect`` prints the summary for humans.
"""

from __future__ import annotations

import json
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class LogSummary:
    """Aggregates reconstructed from one event log."""

    #: Event counts by ``kind`` (including the header).
    events_by_kind: Counter = field(default_factory=Counter)
    #: Individually logged (stepped) slots.
    slots_executed: int = 0
    #: Slots covered by fast-forward span events.
    slots_fast_forwarded: int = 0
    first_slot: int | None = None
    last_slot: int | None = None
    released: int = 0
    delivered: int = 0
    missed: int = 0
    dropped: int = 0
    packets_sent: int = 0
    #: Fault occurrences by kind, matching
    #: :attr:`~repro.sim.metrics.AvailabilityStats.fault_events` (a
    #: ``node_down`` event counts as a ``node_failure`` fault).
    fault_events: Counter = field(default_factory=Counter)
    recoveries: int = 0
    node_failures: int = 0
    node_rejoins: int = 0
    handovers: int = 0
    #: The ``run_header`` event, when the log carries one.
    header: dict | None = None

    @property
    def slots_covered(self) -> int:
        """Slots accounted for: stepped slots plus fast-forwarded spans."""
        return self.slots_executed + self.slots_fast_forwarded

    @property
    def total_events(self) -> int:
        """All events in the log, any kind."""
        return sum(self.events_by_kind.values())


def replay_events(events: Iterable[dict]) -> LogSummary:
    """Fold parsed event dicts (e.g. one per JSONL line) into a summary."""
    s = LogSummary()
    for event in events:
        kind = event.get("kind", "?")
        s.events_by_kind[kind] += 1
        if kind == "slot":
            s.slots_executed += 1
            slot = event["slot"]
            if s.first_slot is None:
                s.first_slot = slot
            s.last_slot = slot
            s.released += event.get("released", 0)
            s.delivered += event.get("delivered", 0)
            s.missed += event.get("missed", 0)
            s.dropped += event.get("dropped", 0)
            s.packets_sent += len(event.get("transmitted", ()))
        elif kind == "fast_forward":
            s.slots_fast_forwarded += event["n_slots"]
            if s.first_slot is None:
                s.first_slot = event["slot_start"]
            s.last_slot = event["slot_end"] - 1
        elif kind == "fault":
            s.fault_events[event["fault"]] += 1
        elif kind == "recovery":
            s.recoveries += 1
        elif kind == "node_down":
            s.node_failures += 1
            s.fault_events["node_failure"] += 1
        elif kind == "node_up":
            s.node_rejoins += 1
        elif kind == "handover":
            s.handovers += 1
        elif kind == "run_header":
            s.header = event
    return s


def iter_jsonl(path: str | Path) -> Iterable[dict]:
    """Yield one dict per non-empty line of a JSONL file."""
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc


def summarise_log(path: str | Path) -> LogSummary:
    """Replay a JSONL event-log file into a :class:`LogSummary`."""
    return replay_events(iter_jsonl(path))


def format_summary(summary: LogSummary) -> str:
    """Human-readable multi-line rendering (used by ``repro inspect``)."""
    lines = []
    if summary.header is not None:
        h = summary.header
        lines.append(
            f"run: N={h.get('n_nodes')} protocol={h.get('protocol')} "
            f"version={h.get('package_version')}"
        )
    if summary.first_slot is not None:
        lines.append(
            f"slots             : {summary.slots_covered} covered "
            f"({summary.slots_executed} stepped, "
            f"{summary.slots_fast_forwarded} fast-forwarded), "
            f"range [{summary.first_slot}, {summary.last_slot}]"
        )
    lines.append(
        f"messages          : released {summary.released}, "
        f"delivered {summary.delivered}, missed {summary.missed}, "
        f"dropped {summary.dropped}"
    )
    lines.append(f"packets sent      : {summary.packets_sent}")
    lines.append(f"hand-overs        : {summary.handovers}")
    if summary.fault_events:
        lines.append(
            f"fault events      : {sum(summary.fault_events.values())} "
            f"({dict(sorted(summary.fault_events.items()))})"
        )
        lines.append(
            f"recoveries        : {summary.recoveries}; node fail/rejoin "
            f"{summary.node_failures}/{summary.node_rejoins}"
        )
    lines.append("events by kind    : " + ", ".join(
        f"{k}={n}" for k, n in sorted(summary.events_by_kind.items())
    ))
    return "\n".join(lines)
