"""Typed observability events, sinks, and the engine-facing dispatcher.

Event taxonomy (one dataclass per kind; the ``kind`` field is the JSONL
discriminator):

=================  ====================================================
kind               meaning
=================  ====================================================
``run_header``     first line of a log: ring size, protocol, versions
``slot``           one executed slot (master, gap, transmissions, and
                   the slot's released/delivered/missed/dropped counts)
``handover``       the clock moved to a different master (hop distance)
``fast_forward``   a span of provably idle slots skipped in one step
``fault``          one injected fault occurrence (collection loss,
                   distribution loss, clock glitch)
``recovery``       a designated-node timeout takeover
``node_down``      a node fail-stop transition
``node_up``        a node repair/rejoin (with its purge count)
``admission``      an admission-control decision (request or resume)
``arbitration``    an arbitration round that denied requests at the
                   clock break (emitted by the MAC protocol itself)
``run_retry``      a campaign run attempt failed and was rescheduled
                   with (deterministically jittered) backoff
``run_quarantine`` a campaign run exhausted its attempt budget and was
                   recorded as a structured failure in the store
``pool_rebuild``   the campaign supervisor replaced a broken or hung
                   worker pool and resubmitted the in-flight runs
``store_corrupt``  a cached result failed checksum verification on
                   resume and was scheduled for re-execution
=================  ====================================================

The last four are *host-side campaign execution* events emitted by the
supervising executor (:mod:`repro.campaign.executor`), not by the
simulator: they never appear in a run's own event log, only in the
campaign-level log (``repro campaign run --events``).

Sinks implement :class:`EventSink`; :class:`JsonlEventLog` streams every
event to disk as one JSON object per line (so a million-slot run costs
disk, not memory) and :class:`BoundedEventRing` keeps the last ``N``
events in memory.  :class:`EventDispatcher` fans one emission out to all
sinks and to any subscribed :class:`~repro.sim.trace.SlotTrace`.

This module deliberately imports nothing from the rest of the package:
events carry plain ints/floats/tuples, so the observability layer can
never perturb -- or depend on -- simulation state.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, fields
from pathlib import Path


class _Event:
    """Base class: ``kind`` discriminator plus dict/JSON conversion."""

    kind: str = ""
    #: Per-class field-name cache (``dataclasses.fields`` is too slow to
    #: call per event on hot paths).
    _names: tuple[str, ...] | None = None

    def to_dict(self) -> dict:
        """The event as a JSON-ready dict (``kind`` first)."""
        cls = type(self)
        names = cls._names
        if names is None:
            names = cls._names = tuple(
                f.name for f in fields(self)  # type: ignore[arg-type]
            )
        out: dict = {"kind": self.kind}
        for name in names:
            out[name] = getattr(self, name)
        return out

    def to_json(self) -> str:
        """The event as one compact JSON line (no trailing newline)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))


@dataclass(frozen=True, slots=True)
class RunHeader(_Event):
    """First event of a log: enough context to interpret what follows."""

    n_nodes: int
    protocol: str
    slot_length_s: float
    package_version: str

    kind = "run_header"


# Floats repeat heavily on a ring (the hand-over gap takes one of a few
# values per topology), and ``repr(float)`` is a surprisingly large slice
# of per-slot emission cost -- memoise it.  Bounded so a pathological
# stream of distinct floats cannot grow it without limit.
_float_reprs: dict[float, str] = {}


def _frepr(value: float) -> str:
    """Memoised ``repr`` for the small set of recurring gap values."""
    cached = _float_reprs.get(value)
    if cached is None:
        if len(_float_reprs) > 1024:
            _float_reprs.clear()
        cached = _float_reprs[value] = repr(value)
    return cached


@dataclass(slots=True)
class SlotExecuted(_Event):
    """One executed slot.

    The four counters are this slot's *deltas* of the run totals, so
    summing them over a whole log reconstructs the report's
    released/delivered/missed/dropped totals exactly
    (:func:`repro.obs.replay.replay_events` does, and a test asserts it).

    Deliberately *not* frozen: this is the one-per-slot hot event, and a
    frozen dataclass pays ``object.__setattr__`` per field on every
    construction (~7x slower).  Treat instances as immutable anyway.
    """

    slot: int
    master: int
    gap_s: float
    #: ``(node, message id)`` pairs that transmitted this slot.
    transmitted: tuple[tuple[int, int], ...]
    n_requests: int
    released: int
    delivered: int
    missed: int
    dropped: int

    kind = "slot"

    def to_json(self) -> str:
        """Hand-rolled JSON line: this is the only per-slot hot event.

        Zero-valued counters and empty transmission lists are omitted
        (replay reads them back with ``.get(..., 0)``), keeping logs of
        mostly idle slots small and emission cheap.  Straight string
        concatenation beats a parts list + join here, and the gap repr
        comes from the :func:`_frepr` cache.
        """
        out = f'{{"kind":"slot","slot":{self.slot},"master":{self.master}'
        if self.gap_s:
            out += ',"gap_s":' + _frepr(self.gap_s)
        if self.transmitted:
            txs = ",".join(f"[{n},{m}]" for n, m in self.transmitted)
            out += f',"transmitted":[{txs}]'
        if self.n_requests:
            out += f',"n_requests":{self.n_requests}'
        if self.released:
            out += f',"released":{self.released}'
        if self.delivered:
            out += f',"delivered":{self.delivered}'
        if self.missed:
            out += f',"missed":{self.missed}'
        if self.dropped:
            out += f',"dropped":{self.dropped}'
        return out + "}"


@dataclass(slots=True)
class HandoverOccurred(_Event):
    """The clock moved: ``hops`` link delays of hand-over gap preceded
    ``slot``.  Not frozen for the same hot-path reason as
    :class:`SlotExecuted` (hand-overs happen most slots on a loaded
    ring); treat as immutable."""

    slot: int
    from_node: int
    to_node: int
    hops: int
    gap_s: float

    kind = "handover"

    def to_json(self) -> str:
        return (
            f'{{"kind":"handover","slot":{self.slot}'
            f',"from_node":{self.from_node},"to_node":{self.to_node}'
            f',"hops":{self.hops},"gap_s":'
        ) + _frepr(self.gap_s) + "}"


@dataclass(frozen=True, slots=True)
class FastForwardSpan(_Event):
    """A run of provably idle slots ``[slot_start, slot_end)`` skipped in
    one step; each skipped slot repeated ``master`` with a zero gap."""

    slot_start: int
    slot_end: int
    n_slots: int
    master: int

    kind = "fast_forward"


@dataclass(frozen=True, slots=True)
class FaultInjected(_Event):
    """One injected fault occurrence; ``fault`` matches the kinds of
    :attr:`~repro.sim.metrics.AvailabilityStats.fault_events`."""

    slot: int
    fault: str

    kind = "fault"


@dataclass(frozen=True, slots=True)
class RecoveryPerformed(_Event):
    """A designated-node takeover after the (backed-off) timeout."""

    slot: int
    designated_node: int
    timeout_s: float
    #: 0-based consecutive-attempt index (drives the backoff).
    attempt: int

    kind = "recovery"


@dataclass(frozen=True, slots=True)
class NodeFailed(_Event):
    """A node fail-stop transition (counts as a ``node_failure`` fault)."""

    slot: int
    node: int

    kind = "node_down"


@dataclass(frozen=True, slots=True)
class NodeRejoined(_Event):
    """A node repair/rejoin; ``purged`` stale messages were dropped."""

    slot: int
    node: int
    purged: int

    kind = "node_up"


@dataclass(frozen=True, slots=True)
class AdmissionDecided(_Event):
    """One admission-control decision (initial request or post-rejoin
    resume).  ``slot`` is ``None`` for decisions taken outside a run."""

    slot: int | None
    connection_id: int
    accepted: bool
    #: ``"request"`` for a new connection, ``"resume"`` after a rejoin.
    phase: str
    utilisation_with: float
    u_max: float

    kind = "admission"


@dataclass(slots=True)
class ArbitrationDenied(_Event):
    """An arbitration round denied requests at the clock break (emitted
    by the MAC protocol; ``slot`` is the slot the plan was for).  Not
    frozen -- per-slot under contention; treat as immutable."""

    slot: int
    nodes: tuple[int, ...]

    kind = "arbitration"

    def to_json(self) -> str:
        """Hand-rolled: denials are per-slot events under contention."""
        nodes = ",".join(map(str, self.nodes))
        return (
            f'{{"kind":"arbitration","slot":{self.slot},"nodes":[{nodes}]}}'
        )


@dataclass(frozen=True, slots=True)
class RunRetryScheduled(_Event):
    """A campaign run attempt failed; the run was requeued with backoff.

    ``attempt`` is the 1-based attempt that just failed; ``delay_s`` the
    deterministically-jittered backoff before the next one.
    """

    run_key: str
    attempt: int
    delay_s: float
    error: str

    kind = "run_retry"


@dataclass(frozen=True, slots=True)
class RunQuarantined(_Event):
    """A campaign run exhausted its attempt budget and was quarantined
    (a structured failure document now sits in the store's ``failed/``
    directory under ``run_key``)."""

    run_key: str
    attempts: int
    error: str

    kind = "run_quarantine"


@dataclass(frozen=True, slots=True)
class WorkerPoolRebuilt(_Event):
    """The campaign supervisor replaced its worker pool -- after a
    worker death broke it (``reason="broken"``) or a run overran its
    wall-clock budget and its worker had to be killed
    (``reason="timeout"``) -- and resubmitted ``resubmitted`` in-flight
    runs."""

    resubmitted: int
    reason: str

    kind = "pool_rebuild"


@dataclass(frozen=True, slots=True)
class StoreCorruptionDetected(_Event):
    """A cached run document failed verification during the resume scan
    and was treated as uncached (the re-run atomically replaces it)."""

    path: str
    run_key: str

    kind = "store_corrupt"


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------


class EventSink:
    """Destination for a stream of events.  Subclasses override
    :meth:`emit` (and usually :meth:`close`); :meth:`emit_slot` has a
    default implementation and only performance-critical sinks need
    their own."""

    def emit(self, event: _Event) -> None:
        """Consume one event."""
        raise NotImplementedError

    def emit_slot(
        self,
        outcome,
        n_requests: int,
        released: int,
        delivered: int,
        missed: int,
        dropped: int,
    ) -> None:
        """Consume one executed slot, given the engine's raw outcome.

        This is the once-per-slot hot call, so the dispatcher hands the
        slot over in engine terms and lets each sink decide how much
        work to do: the default builds a :class:`SlotExecuted` and
        funnels it through :meth:`emit`; :class:`JsonlEventLog`
        overrides it to defer even that until flush time.
        """
        self.emit(
            SlotExecuted(
                slot=outcome.slot,
                master=outcome.master,
                gap_s=outcome.gap_s,
                transmitted=tuple(
                    (tx.node, tx.message.msg_id)
                    for tx in outcome.transmitted
                ),
                n_requests=n_requests,
                released=released,
                delivered=delivered,
                missed=missed,
                dropped=dropped,
            )
        )

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class JsonlEventLog(EventSink):
    """Streams events to disk, one JSON object per line.

    Emission is deliberately lazy: :meth:`emit` only appends the event
    object to a buffer (events are immutable-by-convention, so holding a
    reference is safe) and serialisation happens in one tight loop per
    :meth:`flush` batch.  Running ``to_json`` back-to-back over a batch
    is several times faster than calling it cold at each emission site
    inside the simulator's slot loop, and it keeps the per-event cost on
    the hot path to a list append.  Use as a context manager, or call
    :meth:`close` when the run ends.
    """

    def __init__(self, path: str | Path, buffer_lines: int = 1024):
        if buffer_lines < 1:
            raise ValueError(f"buffer_lines must be >= 1, got {buffer_lines}")
        self.path = Path(path)
        self.buffer_lines = buffer_lines
        self.events_written = 0
        self._buffer: list[_Event] = []
        self._fh = self.path.open("w")

    def emit(self, event: _Event) -> None:
        """Buffer one event (serialised later, in :meth:`flush`)."""
        buffer = self._buffer
        buffer.append(event)
        self.events_written += 1
        if len(buffer) >= self.buffer_lines:
            self.flush()

    def emit_slot(
        self,
        outcome,
        n_requests: int,
        released: int,
        delivered: int,
        missed: int,
        dropped: int,
    ) -> None:
        """Buffer one executed slot as raw engine references.

        No :class:`SlotExecuted` is built on the hot path at all -- just
        a tuple append; :meth:`flush` formats the line straight from the
        outcome (whose fields are stable once the slot has executed).
        """
        buffer = self._buffer
        buffer.append((outcome, n_requests, released, delivered, missed,
                       dropped))
        self.events_written += 1
        if len(buffer) >= self.buffer_lines:
            self.flush()

    @staticmethod
    def _slot_line(entry: tuple) -> str:
        """One buffered slot tuple as the ``kind="slot"`` JSON line
        (same format as :meth:`SlotExecuted.to_json`)."""
        outcome, n_requests, released, delivered, missed, dropped = entry
        out = (
            f'{{"kind":"slot","slot":{outcome.slot}'
            f',"master":{outcome.master}'
        )
        if outcome.gap_s:
            out += ',"gap_s":' + _frepr(outcome.gap_s)
        if outcome.transmitted:
            txs = ",".join(
                f"[{tx.node},{tx.message.msg_id}]"
                for tx in outcome.transmitted
            )
            out += f',"transmitted":[{txs}]'
        if n_requests:
            out += f',"n_requests":{n_requests}'
        if released:
            out += f',"released":{released}'
        if delivered:
            out += f',"delivered":{delivered}'
        if missed:
            out += f',"missed":{missed}'
        if dropped:
            out += f',"dropped":{dropped}'
        return out + "}"

    def flush(self) -> None:
        """Serialise and write any buffered events through to the OS."""
        if self._buffer:
            slot_line = self._slot_line
            lines = [
                slot_line(entry) if type(entry) is tuple
                else entry.to_json()
                for entry in self._buffer
            ]
            self._fh.write("\n".join(lines) + "\n")
            self._buffer.clear()
            self._fh.flush()

    def close(self) -> None:
        """Flush and close the file (idempotent)."""
        if not self._fh.closed:
            self.flush()
            self._fh.close()

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BoundedEventRing(EventSink):
    """Keeps the most recent ``max_events`` events in memory.

    Unlike the old :class:`~repro.sim.trace.SlotTrace` truncation (which
    kept the *oldest* records and silently dropped the rest), the ring
    keeps the newest -- the end of a run is usually where the interesting
    failure is -- and counts what it evicted in :attr:`dropped`.
    """

    def __init__(self, max_events: int = 10_000):
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = max_events
        self._ring: deque[_Event] = deque(maxlen=max_events)
        self.dropped = 0

    def emit(self, event: _Event) -> None:
        """Keep the event, evicting (and counting) the oldest when full."""
        if len(self._ring) == self.max_events:
            self.dropped += 1
        self._ring.append(event)

    @property
    def events(self) -> tuple[_Event, ...]:
        """The retained events, oldest first."""
        return tuple(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------


class EventDispatcher:
    """Fans engine emissions out to sinks and slot-trace subscribers.

    Two kinds of subscribers:

    * *sinks* (:class:`EventSink`) receive every typed event;
    * *traces* (anything with a ``SlotTrace``-compatible ``on_slot``)
      receive the rich per-slot objects (outcome, executed plan, next
      plan, wire packets), exactly as the engine used to call
      ``SlotTrace.on_slot`` directly.

    Only traces force slot-by-slot stepping
    (:attr:`blocks_fast_forward`): a sink is content with one
    :class:`FastForwardSpan` event per skipped span.
    """

    def __init__(self, sinks: tuple[EventSink, ...] = ()):
        self._sinks: list[EventSink] = list(sinks)
        self._traces: list = []

    def add_sink(self, sink: EventSink) -> EventSink:
        """Attach a sink; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def add_trace(self, trace) -> None:
        """Subscribe a ``SlotTrace``-compatible per-slot recorder."""
        self._traces.append(trace)

    @property
    def blocks_fast_forward(self) -> bool:
        """Whether any subscriber must see every slot individually."""
        return bool(self._traces)

    @property
    def wants_slot_events(self) -> bool:
        """Whether the engine should compile per-slot events at all."""
        return bool(self._sinks) or bool(self._traces)

    def emit(self, event: _Event) -> None:
        """Deliver one typed event to every sink."""
        for sink in self._sinks:
            sink.emit(event)

    def dispatch_slot(
        self,
        outcome,
        plan_executed,
        plan_next,
        released: int,
        delivered: int,
        missed: int,
        dropped: int,
    ) -> None:
        """Deliver one executed slot to traces (rich) and sinks (typed)."""
        if self._traces:
            for trace in self._traces:
                trace.on_slot(
                    outcome,
                    plan_executed,
                    plan_next,
                    collection=plan_next.collection_packet,
                    distribution=plan_next.distribution_packet,
                )
        n_requests = plan_next.n_requests
        for sink in self._sinks:
            sink.emit_slot(
                outcome, n_requests, released, delivered, missed, dropped
            )

    def close(self) -> None:
        """Close every sink (idempotent)."""
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "EventDispatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
