"""Run manifests: everything needed to reproduce a published number.

A :class:`RunManifest` is a small JSON document written alongside every
report/CSV/event-log artifact.  It pins the *provenance* of a run: the
full scenario configuration, the master seed, the package version and git
revision that produced it, the host and wall time, and (when profiling
was on) the phase-profiler table.  Any BENCH/EXPERIMENTS number can then
be regenerated from its artifact alone.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import time
from collections import Counter
from pathlib import Path
from typing import Any


def _json_default(obj: Any):
    """Serialise the config types JSON does not know natively."""
    if isinstance(obj, (frozenset, set)):
        return sorted(obj)
    if isinstance(obj, Counter):
        return dict(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    if isinstance(obj, Path):
        return str(obj)
    return repr(obj)


def package_version() -> str:
    """The installed ``repro`` package version (``"unknown"`` if odd)."""
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - partial-import edge
        return "unknown"


def git_revision() -> str | None:
    """The repository HEAD revision, or ``None`` outside a git checkout."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if result.returncode != 0:
        return None
    rev = result.stdout.strip()
    return rev or None


def scenario_to_dict(config) -> dict:
    """A :class:`~repro.sim.runner.ScenarioConfig` (or any dataclass) as
    plain JSON-ready data."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        raw = dataclasses.asdict(config)
    elif isinstance(config, dict):
        raw = dict(config)
    else:
        raise TypeError(
            f"scenario must be a dataclass or dict, got {type(config).__name__}"
        )
    # Round-trip through JSON so frozensets etc. become lists now, not at
    # write time -- the manifest dict is then inspectable as-is.
    return json.loads(json.dumps(raw, default=_json_default))


def fingerprint(payload: Any, *, length: int = 20) -> str:
    """A stable content hash of any JSON-serialisable payload.

    Canonicalises through the same JSON encoding the manifests use
    (sorted keys, :func:`_json_default` for dataclasses/frozensets), so
    two payloads hash equal exactly when their manifests would be
    byte-identical.  The campaign store keys cached runs on
    ``fingerprint({config, seed, n_slots, code_version, ...})``: any
    change to the scenario, the seed derivation, or the package version
    yields a new key and forces a re-run instead of serving stale
    results.
    """
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_json_default
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:length]


@dataclasses.dataclass
class RunManifest:
    """Provenance record of one simulation run (or sweep row)."""

    #: Unix timestamp the manifest was collected at.
    created_unix_s: float
    package_version: str
    git_rev: str | None
    host: str
    platform: str
    python: str
    #: Full scenario configuration (JSON-ready dict), when known.
    scenario: dict | None = None
    master_seed: int | None = None
    n_slots: int | None = None
    #: Real (host) wall-clock seconds the run took.
    elapsed_s: float | None = None
    #: Headline report totals, for cross-checking against the artifact.
    report: dict | None = None
    #: Phase-profiler table (:meth:`~repro.sim.profiling.PhaseProfiler.summary`).
    profile: dict | None = None
    #: Observability registry snapshot (:meth:`~repro.obs.registry.MetricRegistry.as_dict`).
    registry: dict | None = None
    #: Free-form extras (e.g. the CLI argv, artifact paths).
    extra: dict = dataclasses.field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        scenario=None,
        master_seed: int | None = None,
        n_slots: int | None = None,
        report=None,
        profiler=None,
        registry=None,
        elapsed_s: float | None = None,
        extra: dict | None = None,
    ) -> "RunManifest":
        """Gather a manifest from live objects (all optional)."""
        report_summary = None
        if report is not None:
            report_summary = {
                "slots_simulated": report.slots_simulated,
                "wall_time_s": report.wall_time_s,
                "released": report.total_released,
                "delivered": report.total_delivered,
                "missed": report.total_missed,
                "dropped": report.total_dropped,
                "fault_events": dict(report.availability_stats.fault_events),
                "recoveries": report.availability_stats.recoveries,
            }
        return cls(
            created_unix_s=time.time(),
            package_version=package_version(),
            git_rev=git_revision(),
            host=platform.node(),
            platform=platform.platform(),
            python=platform.python_version(),
            scenario=(
                scenario_to_dict(scenario) if scenario is not None else None
            ),
            master_seed=master_seed,
            n_slots=n_slots,
            elapsed_s=elapsed_s,
            report=report_summary,
            profile=profiler.summary() if profiler is not None else None,
            registry=registry.as_dict() if registry is not None else None,
            extra=dict(extra) if extra else {},
        )

    def to_dict(self) -> dict:
        """The manifest as a JSON-ready dict."""
        return dataclasses.asdict(self)

    def write(self, path: str | Path) -> Path:
        """Write the manifest as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.write_text(
            json.dumps(
                self.to_dict(), indent=2, sort_keys=True, default=_json_default
            )
            + "\n"
        )
        return path

    @classmethod
    def read(cls, path: str | Path) -> dict:
        """Load a manifest file back as a plain dict (schema-tolerant)."""
        return json.loads(Path(path).read_text())


def manifest_path_for(artifact: str | Path) -> Path:
    """The conventional manifest path next to an artifact:
    ``<artifact>.manifest.json``."""
    artifact = Path(artifact)
    return artifact.with_name(artifact.name + ".manifest.json")
