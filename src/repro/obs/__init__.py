"""Streaming observability: typed events, sinks, manifests, registries.

The measurement harness is this repository's product (the paper promises a
simulation study it never published), so runs must be *auditable*:

* :mod:`repro.obs.events` -- typed events (slot executed, hand-over, fault
  injected, recovery, node fail/rejoin, admission decision, fast-forward
  span) dispatched from the engine to pluggable sinks: a JSONL-to-disk log
  and a bounded in-memory ring.  The legacy
  :class:`~repro.sim.trace.SlotTrace` subscribes to the same dispatch, so
  tracing-to-disk no longer forces every slot into memory;
* :mod:`repro.obs.manifest` -- a :class:`RunManifest` written alongside
  reports/CSVs: scenario config, seeds, package version, git revision,
  host, wall time and the phase-profiler table, making every published
  number reproducible from its artifact;
* :mod:`repro.obs.registry` -- a unified counter/histogram registry
  backing :class:`~repro.sim.profiling.PhaseProfiler` and (optionally)
  :class:`~repro.sim.metrics.MetricsCollector`, merged across parallel
  replications in deterministic seed order;
* :mod:`repro.obs.replay` -- reconstructs run totals from an event log,
  proving the log is a faithful record of the run.

Everything here is off by default and costs nothing when off: the engine
guards every emission behind a single ``observer is None`` check.
"""

from repro.obs.events import (
    AdmissionDecided,
    BoundedEventRing,
    EventDispatcher,
    EventSink,
    FastForwardSpan,
    FaultInjected,
    HandoverOccurred,
    JsonlEventLog,
    NodeFailed,
    NodeRejoined,
    RecoveryPerformed,
    RunHeader,
    SlotExecuted,
)
from repro.obs.manifest import RunManifest
from repro.obs.registry import Histogram, MetricRegistry
from repro.obs.replay import LogSummary, replay_events, summarise_log

__all__ = [
    "AdmissionDecided",
    "BoundedEventRing",
    "EventDispatcher",
    "EventSink",
    "FastForwardSpan",
    "FaultInjected",
    "HandoverOccurred",
    "Histogram",
    "JsonlEventLog",
    "LogSummary",
    "MetricRegistry",
    "NodeFailed",
    "NodeRejoined",
    "RecoveryPerformed",
    "RunHeader",
    "RunManifest",
    "SlotExecuted",
    "replay_events",
    "summarise_log",
]
