"""A unified counter/histogram registry for run observability.

One :class:`MetricRegistry` per run collects named monotonic counters and
scalar histograms from every instrumented component --
:class:`~repro.sim.profiling.PhaseProfiler` stores its phase timers here,
and :class:`~repro.sim.metrics.MetricsCollector` mirrors its fault/
recovery/latency observations when given a registry.  Registries are
plain picklable values with a deterministic, order-independent
:meth:`~MetricRegistry.merge`, so parallel replication folds per-worker
observability together in seed order exactly as it merges metric values
(:func:`repro.sim.parallel.replicate_parallel`).
"""

from __future__ import annotations

import math
from collections import Counter

#: Host-side campaign-execution counters and the event kind each one
#: mirrors (see :mod:`repro.obs.events`).  Every counter name embeds its
#: event kind as a ``:``-separated segment, which is exactly what the
#: ``event-metric-parity`` lint rule requires: each of these totals can
#: be reconstructed by counting the matching events in a campaign-level
#: log, so the two views never drift.  The supervising executor
#: (:mod:`repro.campaign.executor`) increments them into the
#: :class:`MetricRegistry` it returns on its ``ExecutionSummary``.
CAMPAIGN_COUNTERS: dict[str, str] = {
    "campaign:run_retry": "run_retry",
    "campaign:run_quarantine": "run_quarantine",
    "campaign:pool_rebuild": "pool_rebuild",
    "campaign:store_corrupt": "store_corrupt",
}


class Histogram:
    """Streaming summary of one scalar series.

    Tracks count, sum, min and max exactly, plus a coarse log2-bucketed
    distribution (bucket ``b`` holds observations in ``[2**(b-1), 2**b)``;
    non-positive values land in bucket 0).  All fields merge by addition
    (min/max by min/max), so merging is associative and order-free.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets: Counter = Counter()

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[self._bucket(value)] += 1

    @staticmethod
    def _bucket(value: float) -> int:
        if value <= 0:
            return 0
        return max(0, math.frexp(value)[1])

    @property
    def mean(self) -> float:
        """Mean of the observations (NaN before any)."""
        if self.count == 0:
            return float("nan")
        return self.total / self.count

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        self.buckets.update(other.buckets)

    def as_dict(self) -> dict:
        """JSON-ready summary (finite fields only when populated)."""
        out: dict = {"count": self.count, "total": self.total}
        if self.count:
            out["min"] = self.min
            out["max"] = self.max
            out["mean"] = self.mean
            out["buckets"] = {
                str(b): n for b, n in sorted(self.buckets.items())
            }
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return (
            self.count == other.count
            and self.total == other.total
            and self.min == other.min
            and self.max == other.max
            and self.buckets == other.buckets
        )

    def __repr__(self) -> str:
        return (
            f"Histogram(count={self.count}, total={self.total!r}, "
            f"min={self.min!r}, max={self.max!r})"
        )


class MetricRegistry:
    """Named counters and histograms with deterministic merging."""

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        #: Monotonic named counters.
        self.counters: Counter = Counter()
        #: Named scalar histograms.
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, k: int = 1) -> None:
        """Add ``k`` to counter ``name`` (created at zero on first use)."""
        self.counters[name] += k

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created empty)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        return hist

    def merge(self, other: "MetricRegistry") -> None:
        """Fold another registry in (addition; associative, order-free for
        counts and sums -- float sums are reproducible for a fixed merge
        order, which callers keep in seed order)."""
        self.counters.update(other.counters)
        for name, hist in other.histograms.items():
            self.histogram(name).merge(hist)

    def as_dict(self) -> dict:
        """JSON-ready snapshot, keys sorted for stable artifacts."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "histograms": {
                k: self.histograms[k].as_dict()
                for k in sorted(self.histograms)
            },
        }

    def __getstate__(self):
        return (self.counters, self.histograms)

    def __setstate__(self, state):
        self.counters, self.histograms = state

    def __eq__(self, other) -> bool:
        if not isinstance(other, MetricRegistry):
            return NotImplemented
        return (
            self.counters == other.counters
            and self.histograms == other.histograms
        )

    def __repr__(self) -> str:
        return (
            f"MetricRegistry({len(self.counters)} counters, "
            f"{len(self.histograms)} histograms)"
        )
