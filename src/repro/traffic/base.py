"""The traffic-source interface.

A :class:`TrafficSource` is attached to one node and asked, once per slot,
which new messages it releases into that node's transmit queues.  Sources
must be deterministic functions of their construction parameters (all
randomness comes from an explicitly seeded generator) so that simulations
are reproducible bit-for-bit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.messages import Message


class TrafficSource(ABC):
    """Produces the messages one node releases at each slot."""

    #: Node this source is attached to.
    node: int

    @abstractmethod
    def messages_for_slot(self, slot: int) -> list[Message]:
        """New messages released at the start of ``slot`` (may be empty).

        Every returned message must have ``source == self.node`` and
        ``created_slot == slot``.
        """

    def next_release_slot(self, after: int) -> int | None:
        """Earliest slot ``>= after`` at which this source *may* release.

        Used by the engine's idle-slot fast-forward: slots strictly
        before the returned value are guaranteed release-free and can be
        skipped.  ``None`` means the source will never release again.

        The default is the conservative ``after`` itself (no skip) --
        correct for any source, and required for stochastic sources
        whose release decision is an RNG draw *per slot* (skipping those
        slots would skip the draws and change the sample path).
        Deterministic sources override this with an exact answer.
        """
        return after


class CompositeSource(TrafficSource):
    """Merges several sources attached to the same node."""

    def __init__(self, node: int, sources: Sequence[TrafficSource]):
        for src in sources:
            if src.node != node:
                raise ValueError(
                    f"source attached to node {src.node} cannot join a "
                    f"composite for node {node}"
                )
        self.node = node
        self.sources = tuple(sources)

    def messages_for_slot(self, slot: int) -> list[Message]:
        out: list[Message] = []
        for src in self.sources:
            out.extend(src.messages_for_slot(slot))
        return out

    def next_release_slot(self, after: int) -> int | None:
        earliest: int | None = None
        for src in self.sources:
            nxt = src.next_release_slot(after)
            if nxt is None:
                continue
            if earliest is None or nxt < earliest:
                earliest = nxt
        return earliest
