"""The traffic-source interface.

A :class:`TrafficSource` is attached to one node and asked, once per slot,
which new messages it releases into that node's transmit queues.  Sources
must be deterministic functions of their construction parameters (all
randomness comes from an explicitly seeded generator) so that simulations
are reproducible bit-for-bit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.core.messages import Message


class TrafficSource(ABC):
    """Produces the messages one node releases at each slot."""

    #: Node this source is attached to.
    node: int

    @abstractmethod
    def messages_for_slot(self, slot: int) -> list[Message]:
        """New messages released at the start of ``slot`` (may be empty).

        Every returned message must have ``source == self.node`` and
        ``created_slot == slot``.
        """


class CompositeSource(TrafficSource):
    """Merges several sources attached to the same node."""

    def __init__(self, node: int, sources: Sequence[TrafficSource]):
        for src in sources:
            if src.node != node:
                raise ValueError(
                    f"source attached to node {src.node} cannot join a "
                    f"composite for node {node}"
                )
        self.node = node
        self.sources = tuple(sources)

    def messages_for_slot(self, slot: int) -> list[Message]:
        out: list[Message] = []
        for src in self.sources:
            out.extend(src.messages_for_slot(slot))
        return out
