"""Synthetic radar-signal-processing pipeline workload.

The paper's motivating application (refs [1][2]) is a radar signal
processing chain: antenna data flows through a pipeline of processing
stages (digital beamforming, pulse compression, Doppler filtering,
envelope detection, CFAR, extraction), each stage hosted on one or more
compute nodes, with a new data cube arriving every coherent processing
interval (CPI).

This generator maps such a chain onto the ring: consecutive pipeline
stages on consecutive nodes, one logical real-time connection per
inter-stage hop, all with period = CPI and a per-stage data volume that
shrinks along the chain (later stages operate on reduced data), plus a
low-rate feedback/control connection from the last stage back to the
first.  The result exercises exactly the traffic pattern the paper's
introduction motivates: heavy neighbour-to-neighbour periodic streams
that profit maximally from spatial reuse.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.connection import LogicalRealTimeConnection


#: Relative per-stage output volumes of a representative chain (input
#: data cube normalised to 1.0); loosely follows the stage reductions in
#: refs [1][2]: beamforming keeps the cube, pulse compression keeps it,
#: Doppler filtering halves it, envelope detection halves it again, CFAR
#: decimates it, extraction emits a target list.
DEFAULT_STAGE_VOLUMES: tuple[float, ...] = (1.0, 1.0, 0.5, 0.25, 0.05, 0.01)


def radar_pipeline_connections(
    n_nodes: int,
    cpi_slots: int,
    input_volume_slots: int,
    stage_volumes: Sequence[float] = DEFAULT_STAGE_VOLUMES,
    first_node: int = 0,
    feedback: bool = True,
) -> list[LogicalRealTimeConnection]:
    """Build the LRTC set of one radar pipeline.

    Parameters
    ----------
    n_nodes:
        Ring size; must be at least ``len(stage_volumes)`` so each stage
        gets its own node.
    cpi_slots:
        The coherent processing interval, i.e. the period of every
        connection, in slots.
    input_volume_slots:
        Slots needed to move one full input data cube between stages.
    stage_volumes:
        Relative output volume of each stage; stage ``i`` sends
        ``max(1, round(input_volume_slots * stage_volumes[i]))`` slots to
        stage ``i + 1`` every CPI.
    first_node:
        Node hosting the first stage; stages occupy consecutive
        downstream nodes.
    feedback:
        Add a 1-slot control connection from the last stage back to the
        first (adaptive-processing feedback).
    """
    n_stages = len(stage_volumes)
    if n_stages < 2:
        raise ValueError("a pipeline needs at least 2 stages")
    if n_nodes < n_stages:
        raise ValueError(
            f"need at least {n_stages} nodes for {n_stages} stages, got {n_nodes}"
        )
    if cpi_slots < 1:
        raise ValueError(f"CPI must be >= 1 slot, got {cpi_slots}")
    if input_volume_slots < 1:
        raise ValueError(
            f"input volume must be >= 1 slot, got {input_volume_slots}"
        )

    connections = []
    for stage in range(n_stages - 1):
        src = (first_node + stage) % n_nodes
        dst = (first_node + stage + 1) % n_nodes
        size = max(1, round(input_volume_slots * stage_volumes[stage]))
        if size > cpi_slots:
            raise ValueError(
                f"stage {stage} volume ({size} slots) exceeds the CPI "
                f"({cpi_slots} slots): pipeline intrinsically infeasible"
            )
        connections.append(
            LogicalRealTimeConnection(
                source=src,
                destinations=frozenset([dst]),
                period_slots=cpi_slots,
                size_slots=size,
                # Stagger stage outputs across the CPI to mimic pipelined
                # processing (stage i finishes ~i/n_stages into the CPI).
                phase_slots=(stage * cpi_slots) // n_stages,
            )
        )
    if feedback:
        last = (first_node + n_stages - 1) % n_nodes
        if last != first_node:
            connections.append(
                LogicalRealTimeConnection(
                    source=last,
                    destinations=frozenset([first_node]),
                    period_slots=cpi_slots,
                    size_slots=1,
                    phase_slots=((n_stages - 1) * cpi_slots) // n_stages,
                )
            )
    return connections
