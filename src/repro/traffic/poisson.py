"""Stochastic best-effort and non-real-time sources.

:class:`PoissonSource` releases messages as a Bernoulli-thinned Poisson
process at slot granularity; :class:`BurstySource` is a two-state on/off
(interrupted Bernoulli) process producing the bursty arrivals typical of
best-effort LAN traffic.

Both sources draw from their generator *once per slot*, so they keep the
conservative :meth:`TrafficSource.next_release_slot` default (no slot is
ever skippable): fast-forwarding past a slot would skip its RNG draw and
change the sample path.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.messages import Message
from repro.core.priorities import TrafficClass
from repro.traffic.base import TrafficSource


def _pick_destinations(
    rng: np.random.Generator, node: int, n_nodes: int, destinations: Sequence[int] | None
) -> frozenset[int]:
    if destinations is not None:
        return frozenset(destinations)
    dst = int(rng.integers(n_nodes - 1))
    if dst >= node:
        dst += 1
    return frozenset([dst])


class PoissonSource(TrafficSource):
    """Poisson arrivals of fixed-class messages at one node.

    Parameters
    ----------
    node, n_nodes:
        Attachment point and ring size (for random destination draws).
    rate_per_slot:
        Mean arrivals per slot (may exceed 1; multiple arrivals per slot
        are generated).
    traffic_class:
        BEST_EFFORT or NON_REAL_TIME (guaranteed traffic is periodic by
        construction and uses :class:`ConnectionSource`).
    size_slots:
        Message size in slots.
    relative_deadline_slots:
        Deadline offset from creation for best-effort messages; ignored
        (and must be None) for non-real-time.
    destinations:
        Fixed destination set; if ``None``, each message draws one uniform
        random destination.
    rng:
        Seeded generator; required for reproducibility.
    """

    def __init__(
        self,
        node: int,
        n_nodes: int,
        rate_per_slot: float,
        traffic_class: TrafficClass,
        rng: np.random.Generator,
        size_slots: int = 1,
        relative_deadline_slots: int | None = None,
        destinations: Sequence[int] | None = None,
    ):
        if traffic_class is TrafficClass.RT_CONNECTION:
            raise ValueError(
                "guaranteed traffic is periodic; use ConnectionSource instead"
            )
        if rate_per_slot < 0:
            raise ValueError(f"rate must be non-negative, got {rate_per_slot}")
        if traffic_class is TrafficClass.BEST_EFFORT:
            if relative_deadline_slots is None or relative_deadline_slots < 1:
                raise ValueError(
                    "best-effort messages need a positive relative deadline"
                )
        elif relative_deadline_slots is not None:
            raise ValueError("non-real-time messages carry no deadline")
        self.node = node
        self.n_nodes = n_nodes
        self.rate_per_slot = rate_per_slot
        self.traffic_class = traffic_class
        self.size_slots = size_slots
        self.relative_deadline_slots = relative_deadline_slots
        self.destinations = destinations
        self.rng = rng

    def _make_message(self, slot: int) -> Message:
        deadline = (
            slot + self.relative_deadline_slots
            if self.relative_deadline_slots is not None
            else None
        )
        return Message(
            source=self.node,
            destinations=_pick_destinations(
                self.rng, self.node, self.n_nodes, self.destinations
            ),
            traffic_class=self.traffic_class,
            size_slots=self.size_slots,
            created_slot=slot,
            deadline_slot=deadline,
        )

    def messages_for_slot(self, slot: int) -> list[Message]:
        count = int(self.rng.poisson(self.rate_per_slot))
        return [self._make_message(slot) for _ in range(count)]


class BurstySource(TrafficSource):
    """Two-state on/off arrival process (interrupted Bernoulli).

    In the ON state, one message arrives per slot with probability
    ``on_arrival_probability``; in the OFF state, none arrive.  State
    dwell times are geometric with the given means, giving bursts of mean
    length ``mean_on_slots`` separated by silences of mean
    ``mean_off_slots``.
    """

    def __init__(
        self,
        node: int,
        n_nodes: int,
        rng: np.random.Generator,
        traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
        mean_on_slots: float = 10.0,
        mean_off_slots: float = 40.0,
        on_arrival_probability: float = 1.0,
        size_slots: int = 1,
        relative_deadline_slots: int | None = 100,
        destinations: Sequence[int] | None = None,
    ):
        if traffic_class is TrafficClass.RT_CONNECTION:
            raise ValueError(
                "guaranteed traffic is periodic; use ConnectionSource instead"
            )
        if mean_on_slots < 1 or mean_off_slots < 1:
            raise ValueError("state dwell means must be >= 1 slot")
        if not (0 <= on_arrival_probability <= 1):
            raise ValueError(
                f"arrival probability must be in [0, 1], got {on_arrival_probability}"
            )
        if traffic_class is TrafficClass.BEST_EFFORT:
            if relative_deadline_slots is None or relative_deadline_slots < 1:
                raise ValueError(
                    "best-effort messages need a positive relative deadline"
                )
        elif relative_deadline_slots is not None:
            raise ValueError("non-real-time messages carry no deadline")
        self.node = node
        self.n_nodes = n_nodes
        self.rng = rng
        self.traffic_class = traffic_class
        self.p_leave_on = 1.0 / mean_on_slots
        self.p_leave_off = 1.0 / mean_off_slots
        self.on_arrival_probability = on_arrival_probability
        self.size_slots = size_slots
        self.relative_deadline_slots = relative_deadline_slots
        self.destinations = destinations
        self._on = False
        self._last_slot = -1

    @property
    def mean_rate_per_slot(self) -> float:
        """Long-run mean arrival rate of the on/off process."""
        duty = self.p_leave_off / (self.p_leave_on + self.p_leave_off)
        return duty * self.on_arrival_probability

    def messages_for_slot(self, slot: int) -> list[Message]:
        if slot <= self._last_slot:
            raise ValueError(
                f"bursty source stepped backwards: slot {slot} after {self._last_slot}"
            )
        # Advance the on/off chain one step per elapsed slot.
        for _ in range(slot - self._last_slot):
            leave_p = self.p_leave_on if self._on else self.p_leave_off
            if self.rng.random() < leave_p:
                self._on = not self._on
        self._last_slot = slot
        if not self._on or self.rng.random() >= self.on_arrival_probability:
            return []
        deadline = (
            slot + self.relative_deadline_slots
            if self.relative_deadline_slots is not None
            else None
        )
        return [
            Message(
                source=self.node,
                destinations=_pick_destinations(
                    self.rng, self.node, self.n_nodes, self.destinations
                ),
                traffic_class=self.traffic_class,
                size_slots=self.size_slots,
                created_slot=slot,
                deadline_slot=deadline,
            )
        ]
