"""Industrial workloads with constrained deadlines (``D < P``).

The paper's EDF-vs-static-priority argument bites hardest on workloads
where some connections must deliver well before their next release:
sensor readings that are stale long before the sampling period elapses.
This module provides two such generators:

* :func:`industrial_workload` -- a constrained-deadline UUniFast
  variant: a standard random set in which a configurable fraction of
  connections are "tight-deadline sensor" connections with
  ``D = tight_deadline_ratio * P``;
* :func:`ama_andam_sensor_suite` -- the fixed four-sensor suite of the
  Ama-Andam wheelchair case study (ultrasound, passive infrared,
  sound, button row), the head-to-head study's reference point: at
  ~92% utilisation rate-monotonic arbitration misses the button-row
  deadline while EDF meets every deadline.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.connection import LogicalRealTimeConnection
from repro.traffic.periodic import random_connection_set


def industrial_workload(
    rng: np.random.Generator,
    n_nodes: int,
    n_connections: int,
    utilisation: float,
    period_range: tuple[int, int] = (10, 200),
    tight_fraction: float = 0.5,
    tight_deadline_ratio: float = 0.4,
    multicast_probability: float = 0.0,
) -> list[LogicalRealTimeConnection]:
    """Random constrained-deadline set: UUniFast plus tight sensors.

    Draws a standard UUniFast set (see
    :func:`repro.traffic.periodic.random_connection_set`), then marks a
    ``tight_fraction`` share of connections -- chosen uniformly by
    ``rng`` -- as tight-deadline sensor connections with relative
    deadline ``max(e_i, round(tight_deadline_ratio * P_i))``.  The rest
    keep implicit deadlines (``D = P``).  Utilisation is unchanged by
    the deadline assignment: deadlines constrain *when* work must
    finish, not how much work there is.
    """
    if not (0.0 <= tight_fraction <= 1.0):
        raise ValueError(
            f"tight fraction must be in [0, 1], got {tight_fraction}"
        )
    if not (0.0 < tight_deadline_ratio <= 1.0):
        raise ValueError(
            f"tight deadline ratio must be in (0, 1], got {tight_deadline_ratio}"
        )
    base = random_connection_set(
        rng,
        n_nodes=n_nodes,
        n_connections=n_connections,
        total_utilisation=utilisation,
        period_range=period_range,
        multicast_probability=multicast_probability,
    )
    n_tight = round(tight_fraction * n_connections)
    tight = (
        {int(i) for i in rng.choice(n_connections, size=n_tight, replace=False)}
        if n_tight
        else set()
    )
    out = []
    for i, c in enumerate(base):
        if i in tight:
            deadline = max(
                c.size_slots, round(tight_deadline_ratio * c.period_slots)
            )
            c = dataclasses.replace(c, deadline_slots=deadline)
        out.append(c)
    return out


def ama_andam_sensor_suite(n_nodes: int = 5) -> list[LogicalRealTimeConnection]:
    """The fixed four-sensor suite of the wheelchair case study.

    Four periodic sensor streams feed a controller at node 0 from nodes
    1-4 (``n_nodes`` must be at least 5; extra nodes stay silent).  All
    phases are zero -- the synchronous release is the critical instant
    that separates the policies.  Parameters (period, size, relative
    deadline, all in slots):

    ========== ======= ====== ========= =======
    sensor     period  size   deadline  D / P
    ========== ======= ====== ========= =======
    ultrasound 100     32     100       1.00
    infrared   200     25     80        0.40
    sound      500     180    500       1.00
    button row 300     35     120       0.40
    ========== ======= ====== ========= =======

    Total utilisation is ~0.9217.  On a single shared resource
    (``spatial_reuse=False``) the synchronous-release interference on
    the button row under rate-monotonic order is 32 + 32 + 25 + 35 =
    124 slots of higher-or-equal-rate work inside its 120-slot window,
    so RM misses it; the EDF demand bound for the same window is
    32 + 25 + 35 = 92 <= 120, so EDF meets every deadline.
    """
    if n_nodes < 5:
        raise ValueError(
            f"the sensor suite needs nodes 0-4, got n_nodes={n_nodes}"
        )
    sink = frozenset([0])
    specs = [
        # (source, period, size, deadline)
        (1, 100, 32, 100),  # ultrasound ranger
        (2, 200, 25, 80),  # passive infrared
        (3, 500, 180, 500),  # sound/speech frames
        (4, 300, 35, 120),  # button row scan
    ]
    return [
        LogicalRealTimeConnection(
            source=src,
            destinations=sink,
            period_slots=period,
            size_slots=size,
            phase_slots=0,
            deadline_slots=deadline,
        )
        for src, period, size, deadline in specs
    ]
