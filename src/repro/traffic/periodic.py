"""Periodic traffic: logical real-time connections as sources.

Also provides random LRTC-set generators for the load sweeps: the
UUniFast algorithm (Bini & Buttazzo) draws ``n`` per-connection
utilisations summing exactly to a target ``U``, the standard way to
generate unbiased periodic task sets for schedulability experiments.
"""

from __future__ import annotations

import numpy as np

from repro.core.connection import LogicalRealTimeConnection
from repro.core.messages import Message
from repro.traffic.base import TrafficSource


class ConnectionSource(TrafficSource):
    """Releases the periodic messages of one admitted LRTC.

    Connections are assumed well behaved (Section 6); this source releases
    exactly one message per period, starting at the connection's phase.
    An optional ``active_from``/``active_until`` window supports runtime
    connection set-up and tear-down experiments.
    """

    def __init__(
        self,
        connection: LogicalRealTimeConnection,
        active_from: int = 0,
        active_until: int | None = None,
    ):
        if active_until is not None and active_until < active_from:
            raise ValueError(
                f"active window is empty: [{active_from}, {active_until})"
            )
        self.node = connection.source
        self.connection = connection
        self.active_from = active_from
        self.active_until = active_until

    def messages_for_slot(self, slot: int) -> list[Message]:
        if slot < self.active_from:
            return []
        if self.active_until is not None and slot >= self.active_until:
            return []
        if self.connection.releases_at(slot):
            return [self.connection.release_message(slot)]
        return []

    def next_release_slot(self, after: int) -> int | None:
        """Exact next release: periodic sources are fully predictable."""
        start = max(after, self.active_from)
        if self.active_until is not None and start >= self.active_until:
            return None
        nxt = self.connection.next_release_at_or_after(start)
        if self.active_until is not None and nxt >= self.active_until:
            return None
        return nxt


def uunifast(rng: np.random.Generator, n: int, total_utilisation: float) -> list[float]:
    """Draw ``n`` utilisations summing to ``total_utilisation`` (UUniFast).

    Produces an unbiased uniform sample over the simplex of utilisation
    vectors -- the standard generator for schedulability studies.
    """
    if n < 1:
        raise ValueError(f"need at least one connection, got {n}")
    if total_utilisation <= 0:
        raise ValueError(f"total utilisation must be positive, got {total_utilisation}")
    utilisations = []
    remaining = total_utilisation
    for i in range(n - 1):
        next_remaining = remaining * rng.random() ** (1.0 / (n - 1 - i))
        utilisations.append(remaining - next_remaining)
        remaining = next_remaining
    utilisations.append(remaining)
    return utilisations


def random_connection_set(
    rng: np.random.Generator,
    n_nodes: int,
    n_connections: int,
    total_utilisation: float,
    period_range: tuple[int, int] = (10, 1000),
    multicast_probability: float = 0.0,
    random_phases: bool = True,
) -> list[LogicalRealTimeConnection]:
    """Generate a random LRTC set with the given total utilisation.

    Per connection: a UUniFast utilisation share, a log-uniform period in
    ``period_range`` (the conventional distribution, so short and long
    periods are equally represented), a message size
    ``e_i = max(1, round(U_i * P_i))`` (periods are enlarged when rounding
    up to one slot would overshoot the share), uniformly random distinct
    source/destination nodes, and optionally a multicast destination set.

    The achieved total utilisation can deviate slightly from the request
    because sizes are integral; callers needing an exact load use
    :func:`repro.traffic.sweeps.scale_connections_to_utilisation`.
    """
    if n_nodes < 2:
        raise ValueError(f"a ring needs at least 2 nodes, got {n_nodes}")
    if not (0 <= multicast_probability <= 1):
        raise ValueError(
            f"multicast probability must be in [0, 1], got {multicast_probability}"
        )
    lo, hi = period_range
    if not (1 <= lo <= hi):
        raise ValueError(f"invalid period range {period_range}")

    shares = uunifast(rng, n_connections, total_utilisation)
    connections = []
    for u in shares:
        period = int(round(np.exp(rng.uniform(np.log(lo), np.log(hi)))))
        period = max(lo, min(hi, period))
        size = max(1, round(u * period))
        if size > period:
            size = period
        # If rounding a tiny share up to 1 slot overshoots badly, stretch
        # the period to keep the achieved utilisation near the share.
        if u > 0 and size / period > 2 * u and size == 1:
            period = min(hi, max(lo, int(round(1.0 / u))))
        source = int(rng.integers(n_nodes))
        if rng.random() < multicast_probability and n_nodes > 2:
            k = int(rng.integers(2, n_nodes))
            others = [n for n in range(n_nodes) if n != source]
            dsts = frozenset(
                int(x) for x in rng.choice(others, size=min(k, len(others)), replace=False)
            )
        else:
            dst = int(rng.integers(n_nodes - 1))
            if dst >= source:
                dst += 1
            dsts = frozenset([dst])
        phase = int(rng.integers(period)) if random_phases else 0
        connections.append(
            LogicalRealTimeConnection(
                source=source,
                destinations=dsts,
                period_slots=period,
                size_slots=size,
                phase_slots=phase,
            )
        )
    return connections
