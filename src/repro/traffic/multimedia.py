"""Distributed-multimedia stream workload.

The paper names "distributed multimedia systems" among the target
applications.  This generator builds a mix of constant-bit-rate media
streams as logical real-time connections: video streams (frame-periodic,
multi-slot frames, often multicast) and audio streams (short period,
single-slot packets), parameterised by the slot duration so the stream
rates translate into correct slot-domain periods.
"""

from __future__ import annotations

import numpy as np

from repro.core.connection import LogicalRealTimeConnection


def multimedia_connections(
    rng: np.random.Generator,
    n_nodes: int,
    n_video: int,
    n_audio: int,
    slot_time_s: float,
    slot_payload_bytes: int,
    video_fps: float = 25.0,
    video_frame_bytes: int = 64 * 1024,
    audio_packet_interval_s: float = 0.02,
    audio_packet_bytes: int = 320,
    video_multicast_probability: float = 0.5,
) -> list[LogicalRealTimeConnection]:
    """Build a random mix of video and audio LRTCs.

    Each video stream delivers one ``video_frame_bytes`` frame every
    ``1 / video_fps`` seconds; each audio stream one ``audio_packet_bytes``
    packet every ``audio_packet_interval_s``.  Byte volumes are converted
    to slots via ``slot_payload_bytes`` and intervals to slot-domain
    periods via ``slot_time_s``.  Sources and destinations are drawn
    uniformly; a fraction of video streams multicast to several sinks
    (e.g. monitoring stations).
    """
    if n_nodes < 2:
        raise ValueError(f"a ring needs at least 2 nodes, got {n_nodes}")
    if slot_time_s <= 0 or slot_payload_bytes < 1:
        raise ValueError("slot time and payload must be positive")

    def pick_endpoints(multicast: bool) -> tuple[int, frozenset[int]]:
        src = int(rng.integers(n_nodes))
        others = [n for n in range(n_nodes) if n != src]
        if multicast and len(others) >= 2:
            k = int(rng.integers(2, min(4, len(others)) + 1))
            dsts = frozenset(
                int(x) for x in rng.choice(others, size=k, replace=False)
            )
        else:
            dsts = frozenset([int(rng.choice(others))])
        return src, dsts

    connections = []
    video_period = max(1, round((1.0 / video_fps) / slot_time_s))
    video_size = max(1, -(-video_frame_bytes // slot_payload_bytes))
    if video_size > video_period:
        raise ValueError(
            f"one video frame needs {video_size} slots but the frame period "
            f"is only {video_period} slots: stream infeasible at this rate"
        )
    for _ in range(n_video):
        src, dsts = pick_endpoints(rng.random() < video_multicast_probability)
        connections.append(
            LogicalRealTimeConnection(
                source=src,
                destinations=dsts,
                period_slots=video_period,
                size_slots=video_size,
                phase_slots=int(rng.integers(video_period)),
            )
        )

    audio_period = max(1, round(audio_packet_interval_s / slot_time_s))
    audio_size = max(1, -(-audio_packet_bytes // slot_payload_bytes))
    if audio_size > audio_period:
        raise ValueError(
            f"one audio packet needs {audio_size} slots but the packet "
            f"period is only {audio_period} slots: stream infeasible"
        )
    for _ in range(n_audio):
        src, dsts = pick_endpoints(False)
        connections.append(
            LogicalRealTimeConnection(
                source=src,
                destinations=dsts,
                period_slots=audio_period,
                size_slots=audio_size,
                phase_slots=int(rng.integers(audio_period)),
            )
        )
    return connections
