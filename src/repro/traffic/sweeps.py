"""Load-sweep helpers.

Experiments sweep offered load across a range of utilisations; random
connection-set generators only hit a target utilisation approximately
(message sizes are integral).  :func:`scale_connections_to_utilisation`
rescales an existing set to a new total utilisation by stretching or
shrinking periods, preserving the set's structure (sources, destinations,
relative weights).  :func:`random_workload` is the one-call combination
sweep engines use: draw a random set, then pin its total utilisation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.connection import LogicalRealTimeConnection


def scale_connections_to_utilisation(
    connections: Sequence[LogicalRealTimeConnection],
    target_utilisation: float,
    min_period_slots: int = 1,
    max_period_slots: int | None = None,
) -> list[LogicalRealTimeConnection]:
    """Rescale a connection set to (approximately) a target utilisation.

    Every period is multiplied by ``U_current / U_target`` and rounded;
    message sizes, endpoints and relative phases are preserved.  Because
    periods are integral the achieved utilisation deviates slightly from
    the target; callers compare against the *achieved* value, available as
    ``sum(c.utilisation for c in result)``.
    """
    if target_utilisation <= 0:
        raise ValueError(
            f"target utilisation must be positive, got {target_utilisation}"
        )
    if not connections:
        raise ValueError("cannot scale an empty connection set")
    current = sum(c.utilisation for c in connections)
    factor = current / target_utilisation
    out = []
    for c in connections:
        period = max(min_period_slots, round(c.period_slots * factor))
        period = max(period, c.size_slots)  # keep e_i <= P_i
        if max_period_slots is not None:
            period = min(period, max_period_slots)
            if period < c.size_slots:
                raise ValueError(
                    f"max period {max_period_slots} cannot hold a "
                    f"{c.size_slots}-slot message"
                )
        # Rescale the phase into the new period to keep releases spread.
        phase = c.phase_slots % period
        out.append(
            LogicalRealTimeConnection(
                source=c.source,
                destinations=c.destinations,
                period_slots=period,
                size_slots=c.size_slots,
                phase_slots=phase,
            )
        )
    return out


def random_workload(
    rng: np.random.Generator,
    n_nodes: int,
    n_connections: int,
    utilisation: float,
    period_range: tuple[int, int] = (10, 200),
) -> list[LogicalRealTimeConnection]:
    """Draw a random connection set pinned to a target utilisation.

    The standard workload of the sweep experiments: a UUniFast random
    set (see :func:`repro.traffic.periodic.random_connection_set`)
    rescaled so the achieved total utilisation lands on the target as
    closely as integral message sizes allow.  Deterministic in ``rng``:
    the campaign executor derives one generator per (grid point,
    replication) seed, making every run's workload reproducible from
    the campaign's master seed alone.
    """
    from repro.traffic.periodic import random_connection_set

    base = random_connection_set(
        rng,
        n_nodes=n_nodes,
        n_connections=n_connections,
        total_utilisation=utilisation,
        period_range=period_range,
    )
    return scale_connections_to_utilisation(base, utilisation)
