"""Load-sweep helpers.

Experiments sweep offered load across a range of utilisations; random
connection-set generators only hit a target utilisation approximately
(message sizes are integral).  :func:`scale_connections_to_utilisation`
rescales an existing set to a new total utilisation by stretching or
shrinking periods, preserving the set's structure (sources, destinations,
relative weights).  :func:`random_workload` is the one-call entry point
sweep engines use: draw a set from a named profile at a target
utilisation (UUniFast targets the utilisation at draw time, so no
second rescale pass is applied).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.connection import LogicalRealTimeConnection


def scale_connections_to_utilisation(
    connections: Sequence[LogicalRealTimeConnection],
    target_utilisation: float,
    min_period_slots: int = 1,
    max_period_slots: int | None = None,
) -> list[LogicalRealTimeConnection]:
    """Rescale a connection set to (approximately) a target utilisation.

    Every period is multiplied by ``U_current / U_target`` and rounded;
    message sizes, endpoints and relative phases are preserved.  Because
    periods are integral the achieved utilisation deviates slightly from
    the target; callers compare against the *achieved* value, available as
    ``sum(c.utilisation for c in result)``.
    """
    if target_utilisation <= 0:
        raise ValueError(
            f"target utilisation must be positive, got {target_utilisation}"
        )
    if not connections:
        raise ValueError("cannot scale an empty connection set")
    current = sum(c.utilisation for c in connections)
    factor = current / target_utilisation
    out = []
    for c in connections:
        period = max(min_period_slots, round(c.period_slots * factor))
        period = max(period, c.size_slots)  # keep e_i <= P_i
        if max_period_slots is not None:
            period = min(period, max_period_slots)
            if period < c.size_slots:
                raise ValueError(
                    f"max period {max_period_slots} cannot hold a "
                    f"{c.size_slots}-slot message"
                )
        # Rescale the phase into the new period to keep releases spread;
        # preserve the deadline *ratio* D/P for constrained-deadline sets.
        phase = c.phase_slots % period
        deadline: int | None = None
        if c.deadline_slots is not None:
            deadline = max(
                c.size_slots, min(period, round(period * c.deadline_ratio))
            )
        out.append(
            LogicalRealTimeConnection(
                source=c.source,
                destinations=c.destinations,
                period_slots=period,
                size_slots=c.size_slots,
                phase_slots=phase,
                deadline_slots=deadline,
            )
        )
    return out


#: Workload profiles :func:`random_workload` can draw from.
WORKLOAD_PROFILES = ("uniform", "industrial", "ama-andam")


def random_workload(
    rng: np.random.Generator,
    n_nodes: int,
    n_connections: int,
    utilisation: float,
    period_range: tuple[int, int] = (10, 200),
    profile: str = "uniform",
    tight_fraction: float = 0.5,
    tight_deadline_ratio: float = 0.4,
) -> list[LogicalRealTimeConnection]:
    """Draw a random connection set targeting a total utilisation.

    The standard workload of the sweep experiments.  Deterministic in
    ``rng``: the campaign executor derives one generator per (grid
    point, replication) seed, making every run's workload reproducible
    from the campaign's master seed alone.

    ``profile`` selects the generator family:

    * ``"uniform"`` -- a UUniFast random set with implicit deadlines
      (``D = P``), see :func:`repro.traffic.periodic.random_connection_set`;
    * ``"industrial"`` -- the same base set with a ``tight_fraction``
      share of constrained-deadline sensor connections
      (``D = tight_deadline_ratio * P``), see
      :func:`repro.traffic.industrial.industrial_workload`;
    * ``"ama-andam"`` -- the fixed four-sensor suite of the wheelchair
      case study scaled to the target utilisation, see
      :func:`repro.traffic.industrial.ama_andam_sensor_suite`
      (``n_connections`` is ignored; the suite always has four).

    UUniFast already draws per-connection utilisation shares summing to
    the target, so no post-hoc rescale is applied: the achieved total
    deviates from the target only by the integral-size rounding of each
    connection.  (An earlier revision rescaled the already-targeted set
    a second time, compounding the rounding error -- the regression test
    pins the single-pass error bound.)
    """
    from repro.traffic.industrial import (
        ama_andam_sensor_suite,
        industrial_workload,
    )
    from repro.traffic.periodic import random_connection_set

    if profile == "uniform":
        return random_connection_set(
            rng,
            n_nodes=n_nodes,
            n_connections=n_connections,
            total_utilisation=utilisation,
            period_range=period_range,
        )
    if profile == "industrial":
        return industrial_workload(
            rng,
            n_nodes=n_nodes,
            n_connections=n_connections,
            utilisation=utilisation,
            period_range=period_range,
            tight_fraction=tight_fraction,
            tight_deadline_ratio=tight_deadline_ratio,
        )
    if profile == "ama-andam":
        suite = ama_andam_sensor_suite(n_nodes=n_nodes)
        return scale_connections_to_utilisation(suite, utilisation)
    raise ValueError(
        f"unknown workload profile {profile!r}; choose from {WORKLOAD_PROFILES}"
    )
