"""Load-sweep helpers.

Experiments sweep offered load across a range of utilisations; random
connection-set generators only hit a target utilisation approximately
(message sizes are integral).  :func:`scale_connections_to_utilisation`
rescales an existing set to a new total utilisation by stretching or
shrinking periods, preserving the set's structure (sources, destinations,
relative weights).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.connection import LogicalRealTimeConnection


def scale_connections_to_utilisation(
    connections: Sequence[LogicalRealTimeConnection],
    target_utilisation: float,
    min_period_slots: int = 1,
    max_period_slots: int | None = None,
) -> list[LogicalRealTimeConnection]:
    """Rescale a connection set to (approximately) a target utilisation.

    Every period is multiplied by ``U_current / U_target`` and rounded;
    message sizes, endpoints and relative phases are preserved.  Because
    periods are integral the achieved utilisation deviates slightly from
    the target; callers compare against the *achieved* value, available as
    ``sum(c.utilisation for c in result)``.
    """
    if target_utilisation <= 0:
        raise ValueError(
            f"target utilisation must be positive, got {target_utilisation}"
        )
    if not connections:
        raise ValueError("cannot scale an empty connection set")
    current = sum(c.utilisation for c in connections)
    factor = current / target_utilisation
    out = []
    for c in connections:
        period = max(min_period_slots, round(c.period_slots * factor))
        period = max(period, c.size_slots)  # keep e_i <= P_i
        if max_period_slots is not None:
            period = min(period, max_period_slots)
            if period < c.size_slots:
                raise ValueError(
                    f"max period {max_period_slots} cannot hold a "
                    f"{c.size_slots}-slot message"
                )
        # Rescale the phase into the new period to keep releases spread.
        phase = c.phase_slots % period
        out.append(
            LogicalRealTimeConnection(
                source=c.source,
                destinations=c.destinations,
                period_slots=period,
                size_slots=c.size_slots,
                phase_slots=phase,
            )
        )
    return out
