"""Workload generators.

* :mod:`repro.traffic.base` -- the :class:`TrafficSource` interface the
  simulator consumes;
* :mod:`repro.traffic.periodic` -- periodic sources driven by logical
  real-time connections, plus random LRTC-set generators (UUniFast);
* :mod:`repro.traffic.poisson` -- Poisson and bursty on/off best-effort /
  non-real-time sources;
* :mod:`repro.traffic.radar` -- a synthetic radar-signal-processing
  pipeline workload (the paper's motivating application, refs [1][2]);
* :mod:`repro.traffic.multimedia` -- distributed-multimedia stream mix;
* :mod:`repro.traffic.industrial` -- constrained-deadline (``D < P``)
  industrial sensor workloads, including the fixed Ama-Andam suite;
* :mod:`repro.traffic.sweeps` -- helpers to scale workloads to target
  utilisations for load sweeps, plus the profile-dispatching
  :func:`~repro.traffic.sweeps.random_workload`.
"""

from repro.traffic.base import CompositeSource, TrafficSource
from repro.traffic.periodic import (
    ConnectionSource,
    random_connection_set,
    uunifast,
)
from repro.traffic.poisson import BurstySource, PoissonSource
from repro.traffic.radar import radar_pipeline_connections
from repro.traffic.multimedia import multimedia_connections
from repro.traffic.industrial import (
    ama_andam_sensor_suite,
    industrial_workload,
)
from repro.traffic.sweeps import (
    WORKLOAD_PROFILES,
    random_workload,
    scale_connections_to_utilisation,
)

__all__ = [
    "CompositeSource",
    "TrafficSource",
    "ConnectionSource",
    "random_connection_set",
    "uunifast",
    "BurstySource",
    "PoissonSource",
    "radar_pipeline_connections",
    "multimedia_connections",
    "ama_andam_sensor_suite",
    "industrial_workload",
    "WORKLOAD_PROFILES",
    "random_workload",
    "scale_connections_to_utilisation",
]
