"""CCR-EDF: fibre-ribbon ring network with inherent EDF message scheduling.

A complete reproduction of Bergenhem & Jonsson, "Fibre-Ribbon Ring Network
with Inherent Support for Earliest Deadline First Message Scheduling"
(IPDPS 2002): the network architecture, the two-phase TCMA medium access
protocol with clock hand-over to the highest-priority node, the timing and
schedulability analysis (Equations 1-6), runtime admission control, the
user services (guaranteed connections, best-effort, non-real-time,
barrier synchronisation, global reduction, reliable transmission), a
slot-level simulator, and the baseline protocols the paper argues against.

Quickstart::

    from repro import ScenarioConfig, TrafficClass, run_scenario
    from repro.core import LogicalRealTimeConnection

    conn = LogicalRealTimeConnection(
        source=0, destinations=frozenset([3]), period_slots=10, size_slots=2
    )
    config = ScenarioConfig(n_nodes=8, connections=(conn,))
    report = run_scenario(config, n_slots=10_000)
    print(report.class_stats(TrafficClass.RT_CONNECTION).deadline_miss_ratio)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record.
"""

from repro.core.admission import AdmissionController, AdmissionDecision
from repro.core.connection import LogicalRealTimeConnection
from repro.core.messages import Message, MessageStatus
from repro.core.priorities import TrafficClass
from repro.core.protocol import CcrEdfProtocol
from repro.core.timing import NetworkTiming
from repro.phy.link import FibreRibbonLink
from repro.ring.topology import RingTopology
from repro.sim.engine import Simulation
from repro.sim.metrics import SimulationReport
from repro.sim.runner import (
    RunOptions,
    ScenarioConfig,
    build_simulation,
    run_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "LogicalRealTimeConnection",
    "Message",
    "MessageStatus",
    "TrafficClass",
    "CcrEdfProtocol",
    "NetworkTiming",
    "FibreRibbonLink",
    "RingTopology",
    "Simulation",
    "SimulationReport",
    "RunOptions",
    "ScenarioConfig",
    "build_simulation",
    "run_scenario",
    "__version__",
]
