"""Sharded multi-scenario sweep campaigns.

The campaign engine turns a declarative spec -- base scenario, axes of
overrides, replication count -- into a deterministic grid of runs,
executes them across processes with the bit-identical worker machinery
of :mod:`repro.sim.parallel`, caches every finished run in a
content-addressed :class:`ResultStore` (interrupt a campaign anywhere;
rerunning skips what is done), and aggregates the store into a
:class:`CampaignReport` whose artifacts do not depend on execution
history.

Typical use::

    campaign = Campaign(
        name="miss-ratio",
        base=ScenarioConfig(n_nodes=8),
        n_slots=20_000,
        axes={"protocol": ("ccr-edf", "tdma"),
              "utilisation": (0.5, 0.7, 0.9)},
        workload=WorkloadSpec(n_connections=12),
        n_replications=5,
    )
    store = ResultStore("results/miss-ratio")
    run_campaign(campaign, store, n_jobs=4)
    CampaignReport.from_store(campaign, store).to_csv("miss_ratio.csv")

or, from the command line, ``repro campaign run --spec spec.json``.
"""

from repro.campaign.executor import (
    ExecutionSummary,
    RunTimeoutError,
    WorkerCrashError,
    backoff_delay,
    execute_run,
    run_campaign,
)
from repro.campaign.grid import GridPoint, RunSpec, expand_grid, expand_runs
from repro.campaign.report import CampaignReport
from repro.campaign.spec import Campaign, RetryPolicy, WorkloadSpec
from repro.campaign.store import (
    FsckReport,
    ResultStore,
    StoreError,
    StoreIntegrityError,
    run_key,
)

__all__ = [
    "Campaign",
    "CampaignReport",
    "ExecutionSummary",
    "FsckReport",
    "GridPoint",
    "ResultStore",
    "RetryPolicy",
    "RunSpec",
    "RunTimeoutError",
    "StoreError",
    "StoreIntegrityError",
    "WorkerCrashError",
    "WorkloadSpec",
    "backoff_delay",
    "execute_run",
    "expand_grid",
    "expand_runs",
    "run_campaign",
    "run_key",
]
