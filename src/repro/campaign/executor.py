"""Campaign execution: sharded, cached, resumable.

:func:`run_campaign` walks the expanded run list, skips every run whose
key is already in the store, and executes the rest -- serially or
sharded across a ``ProcessPoolExecutor``.  Each run goes through
:func:`repro.sim.parallel.run_one`, the same bit-identical worker unit
``replicate_parallel`` uses, so a run's result depends only on its
:class:`~repro.campaign.grid.RunSpec` -- never on scheduling, job
count, or which earlier runs were served from cache.

Every completed run is persisted *as it finishes* (atomic write), so an
interrupt at any point loses at most the in-flight runs; the next
invocation resumes from the store.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.campaign.grid import RunSpec, expand_runs
from repro.campaign.spec import Campaign
from repro.campaign.store import ResultStore, run_key
from repro.report import report_row
from repro.sim.engine import Simulation
from repro.sim.parallel import resolve_jobs, run_one
from repro.sim.runner import RunOptions
from repro.traffic.sweeps import random_workload


def _build_run(spec: RunSpec, rng: np.random.Generator) -> Simulation:
    """Build the simulation for one run (module-level: crosses the
    process boundary as ``partial(_build_run, spec)`` would -- here we
    ship the spec itself and rebuild in the worker).

    When the run carries a :class:`~repro.campaign.spec.WorkloadSpec`,
    the connection set is drawn from the *same* generator that then
    drives the simulation, so workload and dynamics both derive from the
    run's single seed.
    """
    config = spec.point.config
    workload = spec.point.workload
    if workload is not None:
        connections = random_workload(
            rng,
            n_nodes=config.n_nodes,
            n_connections=workload.n_connections,
            utilisation=workload.utilisation,
            period_range=(workload.period_min, workload.period_max),
        )
        config = dataclasses.replace(config, connections=tuple(connections))
    return Simulation.from_scenario(config, RunOptions())


def execute_run(spec: RunSpec) -> dict[str, Any]:
    """Execute one run and return its JSON-ready stored document.

    The document separates the deterministic report ``row`` (identity
    columns + :data:`repro.report.REPORT_FIELDS`) from host-side
    ``meta`` (elapsed seconds), so reports assembled from cache are
    byte-identical to freshly computed ones.
    """
    # Host wall-time feeds only the ``meta`` side of the document, never
    # the deterministic ``row``.
    t0 = time.perf_counter()  # repro-lint: disable=no-wallclock-in-sim
    seed = np.random.SeedSequence(entropy=spec.seed_entropy)

    def build(rng: np.random.Generator) -> Simulation:
        return _build_run(spec, rng)

    report, _ = run_one(build, seed, spec.point.n_slots)
    elapsed = time.perf_counter() - t0  # repro-lint: disable=no-wallclock-in-sim
    row: dict[str, Any] = {
        "point": spec.point.index,
        "replication": spec.replication,
        "run_key": run_key(spec),
        "seed": list(spec.seed_entropy),
    }
    for axis, value in spec.point.overrides:
        row[_axis_column(axis)] = value
    row.update(report_row(report))
    return {
        "row": row,
        "meta": {"elapsed_host_s": elapsed},
    }


#: Identity columns every campaign report row starts with.
IDENTITY_FIELDS: tuple[str, ...] = ("point", "replication", "run_key", "seed")


def _axis_column(axis: str) -> str:
    """The report column an axis lands in.

    Axis names that collide with an identity column or a report field
    (``utilisation``, ``n_nodes``, ...) are prefixed ``target_`` -- the
    axis records what was *asked for*, the report field what was
    *achieved*.
    """
    from repro.report import REPORT_FIELDS

    if axis in IDENTITY_FIELDS or axis in REPORT_FIELDS:
        return f"target_{axis}"
    return axis


@dataclass(frozen=True)
class ExecutionSummary:
    """What one ``run_campaign`` invocation did."""

    total: int
    executed: int
    skipped: int
    #: Runs left undone because ``limit`` stopped the invocation early.
    remaining: int

    @property
    def complete(self) -> bool:
        """Whether every run of the campaign is now in the store."""
        return self.remaining == 0


def run_campaign(
    campaign: Campaign,
    store: ResultStore,
    n_jobs: int = 1,
    limit: int | None = None,
) -> ExecutionSummary:
    """Execute (the uncached remainder of) a campaign into a store.

    Parameters
    ----------
    campaign, store:
        The spec and the result store; the spec snapshot is saved into
        the store so ``status``/``report`` work from the directory
        alone.
    n_jobs:
        Worker processes (``<= 0`` = one per available CPU, ``1`` =
        in-process serial).
    limit:
        Execute at most this many *new* runs, then stop -- cached runs
        do not count.  This is the deterministic stand-in for an
        interrupt (CI smoke and the resume tests use it), and a way to
        chip at long campaigns in bounded sessions.
    """
    store.save_campaign(campaign)
    pending: list[tuple[str, RunSpec]] = []
    skipped = 0
    total = 0
    for spec in expand_runs(campaign):
        total += 1
        key = run_key(spec)
        if key in store:
            skipped += 1
        else:
            pending.append((key, spec))

    todo = pending if limit is None else pending[:limit]
    jobs = min(resolve_jobs(n_jobs), max(len(todo), 1))

    if jobs <= 1:
        for key, spec in todo:
            store.save(key, execute_run(spec))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(execute_run, spec): key for key, spec in todo
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                # Persist as results land so an interrupt loses only the
                # in-flight runs, never the finished ones.
                for fut in done:
                    store.save(futures[fut], fut.result())

    return ExecutionSummary(
        total=total,
        executed=len(todo),
        skipped=skipped,
        remaining=len(pending) - len(todo),
    )
