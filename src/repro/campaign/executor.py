"""Campaign execution: sharded, cached, resumable -- and supervised.

:func:`run_campaign` walks the expanded run list, skips every run whose
key is already in the store (re-verifying cached documents, so a corrupt
entry forces a re-run), and executes the rest -- serially or sharded
across a supervised ``ProcessPoolExecutor``.  Each run goes through
:func:`repro.sim.parallel.run_one`, the same bit-identical worker unit
``replicate_parallel`` uses, so a run's result depends only on its
:class:`~repro.campaign.grid.RunSpec` -- never on scheduling, job
count, retries, or which earlier runs were served from cache.

Every completed run is persisted *as it finishes* (atomic write), so an
interrupt at any point loses at most the in-flight runs; the next
invocation resumes from the store.

Fault tolerance (the supervision layer)
---------------------------------------

Workers are expendable; the supervisor is not.  Modelled on the
master/worker split of ARTIQ's scheduler, the sharded path survives:

* **worker death** -- a worker killed by the OOM-killer (or any hard
  crash) breaks a ``ProcessPoolExecutor`` permanently; the supervisor
  detects ``BrokenProcessPool``, rebuilds the pool, charges each
  in-flight run one (unattributable) crash attempt, and resubmits the
  ones still under budget;
* **hangs** -- with :attr:`~repro.campaign.spec.RetryPolicy.run_timeout_s`
  set, a run that overruns its wall-clock budget has its worker killed,
  is charged a timeout attempt, and the surviving in-flight runs are
  resubmitted to a fresh pool without charge;
* **flaky failures** -- a failed attempt is retried with exponential
  backoff whose jitter derives from the run's own ``SeedSequence``
  (:func:`backoff_delay`), so the retry timeline is as reproducible as
  the run itself;
* **poison runs** -- after ``max_attempts`` failures the run is recorded
  as a structured failure document in the store (exception type,
  message, traceback digest, attempt timeline) and the campaign moves
  on; quarantined runs are surfaced in the summary, the CLI exit code,
  and the event stream, and are re-attempted with a fresh budget on the
  next invocation;
* **interrupts** -- SIGINT/SIGTERM drain gracefully: no new submissions,
  in-flight results are persisted, and the summary comes back
  ``interrupted`` (resumable).  A second signal aborts immediately.

Host-clock reads here time *supervision* (deadlines, backoff) and the
``meta`` side of stored documents -- never anything result-bearing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import signal
import time
import traceback
import types
from collections import deque
from collections.abc import Callable
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures import process as _cf_process
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.campaign.grid import RunSpec, expand_runs
from repro.campaign.spec import Campaign, RetryPolicy
from repro.campaign.store import ResultStore, run_key
from repro.obs.events import (
    EventDispatcher,
    RunQuarantined,
    RunRetryScheduled,
    StoreCorruptionDetected,
    WorkerPoolRebuilt,
)
from repro.obs.registry import MetricRegistry
from repro.report import report_row
from repro.sim.engine import Simulation
from repro.sim.parallel import resolve_jobs, run_one
from repro.sim.runner import RunOptions
from repro.traffic.sweeps import random_workload


class WorkerCrashError(RuntimeError):
    """A worker process died (OOM-kill, SIGKILL, hard crash) while runs
    were in flight.  The executor cannot attribute the death to one run,
    so every in-flight run is charged one crash attempt."""


class RunTimeoutError(RuntimeError):
    """A run attempt exceeded its ``RetryPolicy.run_timeout_s`` budget
    and its worker was killed."""


def _now() -> float:
    """Host monotonic clock for supervision deadlines and backoff --
    never a result-bearing value."""
    return time.monotonic()  # repro-lint: disable=no-wallclock-in-sim


def _build_run(
    spec: RunSpec,
    rng: np.random.Generator,
    engine: str | None = None,
) -> Simulation:
    """Build the simulation for one run (module-level: crosses the
    process boundary as ``partial(_build_run, spec)`` would -- here we
    ship the spec itself and rebuild in the worker).

    When the run carries a :class:`~repro.campaign.spec.WorkloadSpec`,
    the connection set is drawn from the *same* generator that then
    drives the simulation, so workload and dynamics both derive from the
    run's single seed.
    """
    config = spec.point.config
    workload = spec.point.workload
    if workload is not None:
        connections = random_workload(
            rng,
            n_nodes=config.n_nodes,
            n_connections=workload.n_connections,
            utilisation=workload.utilisation,
            period_range=(workload.period_min, workload.period_max),
            profile=workload.profile,
            tight_fraction=workload.tight_fraction,
            tight_deadline_ratio=workload.tight_deadline_ratio,
        )
        config = dataclasses.replace(config, connections=tuple(connections))
    if engine is None:
        engine = spec.engine
    return Simulation.from_scenario(config, RunOptions(engine=engine))


def execute_run(spec: RunSpec) -> dict[str, Any]:
    """Execute one run and return its JSON-ready stored document.

    The document separates the deterministic report ``row`` (identity
    columns + :data:`repro.report.REPORT_FIELDS`) from host-side
    ``meta`` (elapsed seconds), so reports assembled from cache are
    byte-identical to freshly computed ones.
    """
    # Host wall-time feeds only the ``meta`` side of the document, never
    # the deterministic ``row``.
    t0 = time.perf_counter()  # repro-lint: disable=no-wallclock-in-sim
    seed = np.random.SeedSequence(entropy=spec.seed_entropy)

    def build(
        rng: np.random.Generator, engine: str | None = None
    ) -> Simulation:
        return _build_run(spec, rng, engine)

    report, _ = run_one(build, seed, spec.point.n_slots, engine=spec.engine)
    elapsed = time.perf_counter() - t0  # repro-lint: disable=no-wallclock-in-sim
    row: dict[str, Any] = {
        "point": spec.point.index,
        "replication": spec.replication,
        "run_key": run_key(spec),
        "seed": list(spec.seed_entropy),
    }
    for axis, value in spec.point.overrides:
        row[_axis_column(axis)] = value
    row.update(report_row(report))
    return {
        "row": row,
        "meta": {"elapsed_host_s": elapsed},
    }


#: Identity columns every campaign report row starts with.
IDENTITY_FIELDS: tuple[str, ...] = ("point", "replication", "run_key", "seed")


def _axis_column(axis: str) -> str:
    """The report column an axis lands in.

    Axis names that collide with an identity column or a report field
    (``utilisation``, ``n_nodes``, ...) are prefixed ``target_`` -- the
    axis records what was *asked for*, the report field what was
    *achieved*.
    """
    from repro.report import REPORT_FIELDS

    if axis in IDENTITY_FIELDS or axis in REPORT_FIELDS:
        return f"target_{axis}"
    return axis


# ----------------------------------------------------------------------
# Retry machinery
# ----------------------------------------------------------------------

#: Entropy stream tag separating retry-jitter draws from the run's own
#: random stream (ASCII "RETR").
_RETRY_STREAM = 0x52455452

#: Longest exception message kept in a failure record.
_MAX_ERROR_CHARS = 500


def backoff_delay(policy: RetryPolicy, spec: RunSpec, attempt: int) -> float:
    """Backoff before the retry that follows failed ``attempt`` (1-based).

    Exponential in the attempt number, capped at ``backoff_max_s``, with
    a jitter fraction drawn from a :class:`numpy.random.SeedSequence`
    derived from the run's entropy and the attempt index -- two hosts
    retrying the same spec back off identically, and the draw is
    lint-clean under ``no-unseeded-rng``.
    """
    base = min(
        policy.backoff_max_s, policy.backoff_base_s * (2.0 ** (attempt - 1))
    )
    if base <= 0.0 or policy.jitter <= 0.0:
        return base
    seed = np.random.SeedSequence(
        entropy=(*spec.seed_entropy, _RETRY_STREAM, attempt)
    )
    frac = float(np.random.default_rng(seed).random())
    return base * (1.0 - policy.jitter * frac)


def _failure_record(
    attempt: int, exc: BaseException, kind: str
) -> dict[str, Any]:
    """One attempt's entry in a run's failure timeline."""
    tb = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    message = str(exc)
    if len(message) > _MAX_ERROR_CHARS:
        message = message[:_MAX_ERROR_CHARS] + "..."
    return {
        "attempt": attempt,
        "kind": kind,  # "exception" | "timeout" | "worker_crash"
        "error_type": type(exc).__name__,
        "error": message,
        "traceback_sha256": hashlib.sha256(tb.encode()).hexdigest(),
    }


def _quarantine_doc(
    task: "_Task", policy: RetryPolicy
) -> dict[str, Any]:
    """The structured failure document stored for a poisoned run."""
    return {
        "run_key": task.key,
        "point": task.spec.point.index,
        "replication": task.spec.replication,
        "seed": list(task.spec.seed_entropy),
        "max_attempts": policy.max_attempts,
        "attempts": list(task.failures),
    }


class _Task:
    """Mutable per-run bookkeeping inside one invocation."""

    __slots__ = ("key", "spec", "failures", "eligible_at", "deadline")

    def __init__(self, key: str, spec: RunSpec) -> None:
        self.key = key
        self.spec = spec
        #: Failure records of attempts so far (the quarantine timeline).
        self.failures: list[dict[str, Any]] = []
        #: Monotonic time before which the task must not be (re)submitted.
        self.eligible_at: float = 0.0
        #: Monotonic wall-clock deadline of the in-flight attempt.
        self.deadline: float | None = None


class _DrainGuard:
    """Graceful-drain signal handling for one ``run_campaign`` call.

    The first SIGINT/SIGTERM sets :attr:`draining`: the executor stops
    submitting new runs, finishes and persists the in-flight ones, and
    returns a resumable summary.  A second signal raises
    ``KeyboardInterrupt`` for an immediate abort (atomic store writes
    keep even that resumable).  Outside the main thread -- where signal
    handlers cannot be installed -- the guard degrades to a no-op.
    """

    def __init__(self) -> None:
        self.draining = False
        self._previous: dict[int, Any] = {}

    def _handle(
        self, signum: int, frame: types.FrameType | None
    ) -> None:
        if self.draining:
            raise KeyboardInterrupt
        self.draining = True

    def __enter__(self) -> "_DrainGuard":
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[sig] = signal.signal(sig, self._handle)
            except ValueError:  # not the main thread
                break
        return self

    def __exit__(self, *exc: object) -> None:
        for sig, previous in self._previous.items():
            signal.signal(sig, previous)
        self._previous.clear()


def _drain_sleep(delay: float, drain: _DrainGuard) -> None:
    """Sleep up to ``delay`` seconds, waking early on a drain signal."""
    end = _now() + delay
    while not drain.draining:
        left = end - _now()
        if left <= 0:
            return
        time.sleep(min(left, 0.1))


@dataclass(frozen=True)
class ExecutionSummary:
    """What one ``run_campaign`` invocation did."""

    total: int
    #: Runs executed successfully (and persisted) this invocation.
    executed: int
    #: Runs served from (verified) cache.
    skipped: int
    #: Runs neither cached, executed, nor quarantined -- left undone by
    #: ``limit``, a drain signal, or backoff still pending at drain.
    remaining: int
    #: Failed attempts observed (retries plus quarantine finals).
    failed_attempts: int = 0
    #: Runs that exhausted their attempt budget and were quarantined.
    quarantined: int = 0
    #: Cached documents that failed verification and were re-executed.
    corrupt_replaced: int = 0
    #: Times the worker pool was rebuilt (worker death or timeout kill).
    pool_rebuilds: int = 0
    #: Whether a drain signal (SIGINT/SIGTERM) cut the invocation short.
    interrupted: bool = False
    #: Host-side supervision counters (``campaign:*`` -- see
    #: :data:`repro.obs.registry.CAMPAIGN_COUNTERS`).
    registry: MetricRegistry | None = None

    @property
    def complete(self) -> bool:
        """Whether every run of the campaign is now in the store (no
        pending remainder, nothing quarantined)."""
        return self.remaining == 0 and self.quarantined == 0


class _Supervisor:
    """Shared state of one invocation's execution loop (both paths)."""

    def __init__(
        self,
        store: ResultStore,
        policy: RetryPolicy,
        jobs: int,
        observer: EventDispatcher | None,
        registry: MetricRegistry,
        run_fn: Callable[[RunSpec], dict[str, Any]],
    ) -> None:
        self.store = store
        self.policy = policy
        self.jobs = jobs
        self.observer = observer
        self.registry = registry
        self.run_fn = run_fn
        self.executed = 0
        self.failed_attempts = 0
        self.quarantined = 0
        self.pool_rebuilds = 0
        self.queue: deque[_Task] = deque()
        self.in_flight: dict[Future[dict[str, Any]], _Task] = {}
        self._pool: ProcessPoolExecutor | None = None

    # -- shared event plumbing -----------------------------------------

    def _emit(self, event: Any) -> None:
        if self.observer is not None:
            self.observer.emit(event)

    def _record_success(self, task: _Task, doc: dict[str, Any]) -> None:
        self.store.save(task.key, doc)
        self.executed += 1

    def _attempt_failed(
        self, task: _Task, exc: BaseException, kind: str, requeue: bool = True
    ) -> bool:
        """Charge one failed attempt: schedule a retry with backoff, or
        quarantine once the budget is spent.

        Returns whether a retry was scheduled (``False`` = quarantined).
        With ``requeue`` the retried task re-enters :attr:`queue`; the
        serial path passes ``requeue=False`` and loops in place.
        """
        attempt = len(task.failures) + 1
        record = _failure_record(attempt, exc, kind)
        task.failures.append(record)
        self.failed_attempts += 1
        task.deadline = None
        if attempt >= self.policy.max_attempts:
            self.quarantined += 1
            self.store.save_failure(
                task.key, _quarantine_doc(task, self.policy)
            )
            self.registry.inc("campaign:run_quarantine")
            self._emit(
                RunQuarantined(
                    run_key=task.key,
                    attempts=attempt,
                    error=record["error_type"] + ": " + record["error"],
                )
            )
            return False
        delay = backoff_delay(self.policy, task.spec, attempt)
        record["backoff_s"] = delay
        task.eligible_at = _now() + delay
        if requeue:
            self.queue.append(task)
        self.registry.inc("campaign:run_retry")
        self._emit(
            RunRetryScheduled(
                run_key=task.key,
                attempt=attempt,
                delay_s=delay,
                error=record["error_type"] + ": " + record["error"],
            )
        )
        return True

    # -- serial path ----------------------------------------------------

    def run_serial(
        self, todo: list[tuple[str, RunSpec]], drain: _DrainGuard
    ) -> None:
        """In-process execution with retry + quarantine (no preemption,
        so ``run_timeout_s`` cannot be enforced here)."""
        for key, spec in todo:
            if drain.draining:
                return
            task = _Task(key, spec)
            while True:
                try:
                    doc = self.run_fn(spec)
                except Exception as exc:
                    if not self._attempt_failed(
                        task, exc, "exception", requeue=False
                    ):
                        break  # quarantined
                    _drain_sleep(max(0.0, task.eligible_at - _now()), drain)
                    if drain.draining:
                        return  # run stays pending; resume re-attempts it
                else:
                    self._record_success(task, doc)
                    break

    # -- sharded path ---------------------------------------------------

    def run_sharded(
        self, todo: list[tuple[str, RunSpec]], drain: _DrainGuard
    ) -> None:
        """Supervised ``ProcessPoolExecutor`` execution: retries,
        timeouts with worker kill, pool rebuild on worker death."""
        self.queue = deque(_Task(key, spec) for key, spec in todo)
        self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while self.in_flight or (self.queue and not drain.draining):
                self._submit_eligible(drain)
                if not self.in_flight:
                    if drain.draining:
                        return
                    # Everything queued is backing off; doze to the
                    # earliest eligibility (drain-interruptible).
                    delay = max(
                        0.0,
                        min(t.eligible_at for t in self.queue) - _now(),
                    )
                    _drain_sleep(min(delay, 0.5), drain)
                    continue
                done, _ = wait(
                    set(self.in_flight),
                    timeout=self._wait_timeout(),
                    return_when=FIRST_COMPLETED,
                )
                requeued_before = len(self.queue)
                broken = self._collect(done)
                if broken:
                    self._rebuild_pool(
                        "broken",
                        resubmitted=len(self.queue) - requeued_before,
                    )
                else:
                    self._reap_timeouts()
        finally:
            self._shutdown_pool()

    def _submit_eligible(self, drain: _DrainGuard) -> None:
        """Move eligible queued tasks into flight, up to the job count."""
        if drain.draining or self._pool is None:
            return
        now = _now()
        remaining: deque[_Task] = deque()
        while self.queue:
            task = self.queue.popleft()
            if len(self.in_flight) >= self.jobs or task.eligible_at > now:
                remaining.append(task)
                continue
            future = self._pool.submit(self.run_fn, task.spec)
            if self.policy.run_timeout_s is not None:
                task.deadline = now + self.policy.run_timeout_s
            self.in_flight[future] = task
        self.queue = remaining

    def _wait_timeout(self) -> float:
        """How long to block in ``wait()``: until the nearest deadline or
        backoff expiry, capped so drain signals are noticed promptly."""
        now = _now()
        horizon = 0.5
        for task in self.in_flight.values():
            if task.deadline is not None:
                horizon = min(horizon, task.deadline - now)
        for task in self.queue:
            horizon = min(horizon, task.eligible_at - now)
        return max(0.01, horizon)

    def _collect(self, done: set[Future[dict[str, Any]]]) -> bool:
        """Harvest finished futures.

        Every successful result in the batch is persisted *before* any
        failure is acted on, so one bad run can never discard its
        batch-mates.  Returns whether the pool broke (a worker died).
        """
        failures: list[tuple[_Task, BaseException]] = []
        broken = False
        for future in done:
            task = self.in_flight.pop(future)
            try:
                doc = future.result()
            except _cf_process.BrokenProcessPool:
                broken = True
                failures.append(
                    (
                        task,
                        WorkerCrashError(
                            "worker process died while this run was in "
                            "flight (OOM-kill or hard crash; culprit "
                            "unattributable)"
                        ),
                    )
                )
            except Exception as exc:
                failures.append((task, exc))
            else:
                self._record_success(task, doc)
        if broken:
            # The pool is permanently broken: every other in-flight
            # future is doomed too -- but one that finished *before* the
            # break still holds its result, so harvest before charging.
            for future, task in list(self.in_flight.items()):
                crash_exc: BaseException = WorkerCrashError(
                    "worker pool broke while this run was in flight; "
                    "resubmitted after pool rebuild"
                )
                if future.done():
                    try:
                        doc = future.result()
                    except _cf_process.BrokenProcessPool:
                        failures.append((task, crash_exc))
                    except Exception as exc:
                        failures.append((task, exc))
                    else:
                        self._record_success(task, doc)
                else:
                    failures.append((task, crash_exc))
            self.in_flight.clear()
        for task, exc in failures:
            kind = (
                "worker_crash"
                if isinstance(exc, WorkerCrashError)
                else "exception"
            )
            self._attempt_failed(task, exc, kind)
        return broken

    def _reap_timeouts(self) -> None:
        """Kill the pool if any in-flight run overran its deadline;
        charge the overrunners, resubmit the innocent survivors."""
        if self.policy.run_timeout_s is None or not self.in_flight:
            return
        now = _now()
        expired = [
            (future, task)
            for future, task in self.in_flight.items()
            if task.deadline is not None
            and now >= task.deadline
            and not future.done()
        ]
        if not expired:
            return
        # Persist anything that finished between wait() and now before
        # tearing the pool down.
        finished = {f for f in self.in_flight if f.done()}
        if finished:
            self._collect(finished)
        for future, _task in expired:
            self.in_flight.pop(future, None)
        survivors = list(self.in_flight.values())
        self.in_flight.clear()
        for _future, task in expired:
            self._attempt_failed(
                task,
                RunTimeoutError(
                    f"run exceeded its {self.policy.run_timeout_s} s "
                    "wall-clock budget; worker killed"
                ),
                "timeout",
            )
        # Innocent survivors were aborted through no fault of their own:
        # resubmit without charging an attempt.
        for task in reversed(survivors):
            task.deadline = None
            task.eligible_at = 0.0
            self.queue.appendleft(task)
        self._rebuild_pool("timeout", resubmitted=len(survivors))

    def _rebuild_pool(self, reason: str, resubmitted: int) -> None:
        """Replace the worker pool (after breakage or a timeout kill)."""
        self._shutdown_pool()
        self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        self.pool_rebuilds += 1
        self.registry.inc("campaign:pool_rebuild")
        self._emit(WorkerPoolRebuilt(resubmitted=resubmitted, reason=reason))

    def _shutdown_pool(self) -> None:
        """Kill worker processes (hung ones included) and drop the pool."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.kill()
            except (OSError, ValueError):  # pragma: no cover - racing exit
                pass
        pool.shutdown(wait=False, cancel_futures=True)


def run_campaign(
    campaign: Campaign,
    store: ResultStore,
    n_jobs: int = 1,
    limit: int | None = None,
    observer: EventDispatcher | None = None,
    run_fn: Callable[[RunSpec], dict[str, Any]] = execute_run,
) -> ExecutionSummary:
    """Execute (the uncached remainder of) a campaign into a store.

    Parameters
    ----------
    campaign, store:
        The spec and the result store; the spec snapshot is saved into
        the store so ``status``/``report`` work from the directory
        alone.  ``campaign.retry`` governs attempts, backoff, and the
        per-run timeout.
    n_jobs:
        Worker processes (``<= 0`` = one per available CPU, ``1`` =
        in-process serial).  Worker supervision -- timeout kills and
        pool rebuilds -- needs worker processes, so it applies only when
        ``n_jobs != 1``.
    limit:
        Attempt at most this many *new* runs, then stop -- cached runs
        do not count.  This is the deterministic stand-in for an
        interrupt (CI smoke and the resume tests use it), and a way to
        chip at long campaigns in bounded sessions.
    observer:
        Optional :class:`~repro.obs.events.EventDispatcher` receiving
        the host-side supervision events (``run_retry``,
        ``run_quarantine``, ``pool_rebuild``, ``store_corrupt``).
    run_fn:
        The per-run worker body (module-level picklable callable);
        :func:`execute_run` by default.  The chaos test harness
        substitutes a failure-injecting wrapper here.
    """
    store.save_campaign(campaign)
    registry = MetricRegistry()
    pending: list[tuple[str, RunSpec]] = []
    skipped = 0
    corrupt_replaced = 0
    total = 0
    for spec in expand_runs(campaign):
        total += 1
        key = run_key(spec)
        if key in store:
            if store.is_valid(key):
                skipped += 1
                continue
            # Damaged cache entry: schedule a re-run that atomically
            # replaces it, instead of letting it poison the report.
            corrupt_replaced += 1
            registry.inc("campaign:store_corrupt")
            if observer is not None:
                observer.emit(
                    StoreCorruptionDetected(
                        path=str(store.path_for(key)), run_key=key
                    )
                )
        pending.append((key, spec))

    todo = pending if limit is None else pending[:limit]
    jobs = min(resolve_jobs(n_jobs), max(len(todo), 1))

    supervisor = _Supervisor(
        store=store,
        policy=campaign.retry,
        jobs=jobs,
        observer=observer,
        registry=registry,
        run_fn=run_fn,
    )
    with _DrainGuard() as drain:
        if jobs <= 1:
            supervisor.run_serial(todo, drain)
        else:
            supervisor.run_sharded(todo, drain)

    return ExecutionSummary(
        total=total,
        executed=supervisor.executed,
        skipped=skipped,
        remaining=(
            total - skipped - supervisor.executed - supervisor.quarantined
        ),
        failed_attempts=supervisor.failed_attempts,
        quarantined=supervisor.quarantined,
        corrupt_replaced=corrupt_replaced,
        pool_rebuilds=supervisor.pool_rebuilds,
        interrupted=drain.draining,
        registry=registry,
    )
