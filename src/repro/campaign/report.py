"""Cross-scenario campaign reports.

A :class:`CampaignReport` assembles the store's cached rows back into
**grid order** (point-major, then replication), independent of the
order runs actually executed in or how many invocations it took to fill
the store.  That makes the aggregate artifact bit-identical between an
uninterrupted serial campaign and any interrupted/resumed/sharded
history -- the property the resume tests pin down.
"""

from __future__ import annotations

import json
import math
import statistics
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaign.executor import IDENTITY_FIELDS, _axis_column, run_key
from repro.campaign.grid import expand_runs
from repro.campaign.spec import Campaign
from repro.campaign.store import ResultStore
from repro.obs.manifest import RunManifest, _json_default
from repro.report import REPORT_FIELDS, write_rows_csv


@dataclass(frozen=True)
class CampaignReport:
    """Long-form cross-scenario results of one campaign."""

    campaign: Campaign
    #: Report columns in order: identity, axes, then report fields.
    fieldnames: tuple[str, ...]
    #: One row per completed run, in grid order.
    rows: tuple[dict[str, Any], ...]
    #: Keys of runs the store does not hold yet (campaign incomplete).
    missing: tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        """Whether every run of the campaign had a cached result."""
        return not self.missing

    # -- assembly -------------------------------------------------------

    @classmethod
    def from_store(
        cls, campaign: Campaign, store: ResultStore
    ) -> "CampaignReport":
        """Collect every cached run of the campaign, in grid order."""
        axis_columns = tuple(
            _axis_column(name) for name in campaign.axis_names
        )
        fieldnames = IDENTITY_FIELDS + axis_columns + REPORT_FIELDS
        rows: list[dict[str, Any]] = []
        missing: list[str] = []
        for spec in expand_runs(campaign):
            key = run_key(spec)
            if key in store:
                rows.append(store.load(key)["row"])
            else:
                missing.append(key)
        return cls(
            campaign=campaign,
            fieldnames=fieldnames,
            rows=tuple(rows),
            missing=tuple(missing),
        )

    # -- aggregation ----------------------------------------------------

    def marginals(self, metric: str) -> dict[str, dict[Any, float]]:
        """Per-axis marginal means of one report metric.

        For each axis, rows are grouped by the axis value and the metric
        averaged over everything else (all other axes and all
        replications); NaN cells are skipped.  Groups with no defined
        values come back as NaN.
        """
        if metric not in self.fieldnames:
            raise ValueError(f"unknown metric {metric!r}")
        out: dict[str, dict[Any, float]] = {}
        for name, values in self.campaign.axes:
            column = _axis_column(name)
            per_value: dict[Any, float] = {}
            for value in values:
                samples = [
                    float(row[metric])
                    for row in self.rows
                    if row[column] == value
                    and not _is_nan(row[metric])
                ]
                per_value[value] = (
                    statistics.fmean(samples) if samples else float("nan")
                )
            out[name] = per_value
        return out

    # -- artifacts ------------------------------------------------------

    def to_csv(
        self, path: str | Path, manifest: "RunManifest | None" = None
    ) -> Path:
        """Write the long-form rows as CSV (repo-standard NaN spelling,
        optional manifest sibling)."""
        return write_rows_csv(path, self.fieldnames, self.rows, manifest)

    def to_json(self, path: str | Path) -> Path:
        """Write rows + per-axis marginals as one JSON document."""
        path = Path(path)
        doc = {
            "campaign": self.campaign.to_dict(),
            "fieldnames": list(self.fieldnames),
            "rows": [_json_row(row) for row in self.rows],
            "marginals": {
                metric: self.marginals(metric)
                for metric in ("rt_miss_ratio", "rt_mean_latency_slots")
                if self.rows
            },
            "missing": len(self.missing),
        }
        path.write_text(
            json.dumps(doc, indent=2, sort_keys=True, default=_json_default)
            + "\n"
        )
        return path


def _is_nan(value: Any) -> bool:
    return isinstance(value, float) and math.isnan(value)


def _json_row(row: dict[str, Any]) -> dict[str, Any]:
    """NaN is not valid JSON; spell it as ``None`` in the JSON artifact."""
    return {k: (None if _is_nan(v) else v) for k, v in row.items()}
