"""On-disk result store with content-addressed run caching.

Each finished run is persisted as ``runs/<key>.json`` where ``key`` is
a :func:`repro.obs.manifest.fingerprint` over everything that determines
the result: the resolved scenario, the workload spec, the slot budget,
the run's seed entropy, and the package version.  Identity by content
means:

* an interrupted campaign resumes by skipping every key already on
  disk -- no journal, no partial-state file to reconcile;
* two campaigns sharing grid points share cached runs;
* any change to the config, the seed derivation, or the code version
  changes the key and forces a re-run instead of serving stale rows.

Writes are atomic (tmp file + ``os.replace``) so a run killed mid-write
never leaves a truncated JSON behind to poison a resume.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any

from repro.campaign.grid import RunSpec
from repro.campaign.spec import Campaign
from repro.obs.manifest import (
    _json_default,
    fingerprint,
    package_version,
    scenario_to_dict,
)


def run_key(spec: RunSpec) -> str:
    """The content-addressed cache key of one run.

    Deliberately excludes the campaign *name*: two campaigns asking for
    the same (config, workload, slots, seed) at the same code version
    describe the same run and share its cached result.
    """
    payload = {
        "config": scenario_to_dict(spec.point.config),
        "workload": (
            dataclasses.asdict(spec.point.workload)
            if spec.point.workload is not None
            else None
        ),
        "n_slots": spec.point.n_slots,
        "seed": list(spec.seed_entropy),
        "code_version": package_version(),
    }
    return fingerprint(payload)


class ResultStore:
    """Directory-backed store of finished campaign runs.

    Layout::

        <root>/
          campaign.json        # spec snapshot of the last campaign run here
          runs/<key>.json      # one JSON row per completed run
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)

    # -- campaign snapshot ---------------------------------------------

    @property
    def spec_path(self) -> Path:
        """Where the campaign spec snapshot lives in this store."""
        return self.root / "campaign.json"

    def save_campaign(self, campaign: Campaign) -> Path:
        """Snapshot the campaign spec (so ``status``/``report`` need only
        the store directory)."""
        return self._write_json(self.spec_path, campaign.to_dict())

    def load_campaign(self) -> Campaign:
        """The campaign last saved into this store."""
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"no campaign snapshot at {self.spec_path}; "
                "run the campaign (or pass --spec) first"
            )
        return Campaign.from_dict(json.loads(self.spec_path.read_text()))

    # -- run rows -------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The file one run's document lives at."""
        return self.runs_dir / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def save(self, key: str, row: dict[str, Any]) -> Path:
        """Persist one finished run atomically."""
        return self._write_json(self.path_for(key), row)

    def load(self, key: str) -> dict[str, Any]:
        """Load one cached run's document back."""
        return json.loads(self.path_for(key).read_text())

    def keys(self) -> list[str]:
        """Keys of every cached run, sorted (content order, not grid
        order -- the report re-orders via the grid)."""
        return sorted(p.stem for p in self.runs_dir.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.runs_dir.glob("*.json"))

    # -- internals ------------------------------------------------------

    def _write_json(self, path: Path, payload: dict[str, Any]) -> Path:
        """Atomic JSON write: tmp sibling + rename."""
        text = json.dumps(
            payload, indent=2, sort_keys=True, default=_json_default
        )
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text + "\n")
        os.replace(tmp, path)
        return path
