"""On-disk result store with content-addressed caching and integrity.

Each finished run is persisted as ``runs/<key>.json`` where ``key`` is
a :func:`repro.obs.manifest.fingerprint` over everything that determines
the result: the resolved scenario, the workload spec, the slot budget,
the run's seed entropy, and the package version.  Identity by content
means:

* an interrupted campaign resumes by skipping every key already on
  disk -- no journal, no partial-state file to reconcile;
* two campaigns sharing grid points share cached runs;
* any change to the config, the seed derivation, or the code version
  changes the key and forces a re-run instead of serving stale rows.

Writes are atomic (tmp file + ``os.replace``) so a run killed mid-write
never leaves a truncated JSON behind to poison a resume.

Integrity
---------

Atomic writes protect against *our* crashes, but not against a damaged
filesystem, a half-copied store directory, or a hand-edited file.  Every
document is therefore written as an envelope carrying a SHA-256 checksum
of its canonical payload::

    {"payload": {...}, "sha256": "<hex digest>"}

:meth:`ResultStore.load` verifies the checksum and raises
:class:`StoreIntegrityError` (naming the offending path and suggesting
``repro campaign fsck``) on any mismatch, truncation, or undecodable
JSON; :meth:`ResultStore.is_valid` is the non-raising form the executor
uses on resume, so a corrupt entry forces a re-run instead of poisoning
the report.  :meth:`ResultStore.fsck` scans the whole store and (with
``repair=True``) evicts the damaged entries.

Quarantine documents -- the structured failure records the executor
writes for runs that exhausted their attempt budget -- live under
``failed/<key>.json`` in the same envelope format, strictly separate
from results so a failure can never be served as a row.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.campaign.grid import RunSpec
from repro.campaign.spec import Campaign
from repro.obs.manifest import (
    _json_default,
    fingerprint,
    package_version,
    scenario_to_dict,
)


class StoreError(RuntimeError):
    """A result-store operation failed (bad snapshot, unreadable file)."""


class StoreIntegrityError(StoreError):
    """A store file is corrupt, truncated, or fails its checksum.

    Carries the offending :attr:`path` so tooling (and the error
    message) can point straight at the damaged file.
    """

    def __init__(self, path: Path, reason: str) -> None:
        self.path = Path(path)
        self.reason = reason
        super().__init__(
            f"corrupt store entry {self.path}: {reason}; run "
            "`repro campaign fsck --store <dir>` to scan the store, or "
            "add --repair to evict damaged entries and force a re-run"
        )


def run_key(spec: RunSpec) -> str:
    """The content-addressed cache key of one run.

    Deliberately excludes the campaign *name* (two campaigns asking for
    the same (config, workload, slots, seed) at the same code version
    describe the same run and share its cached result), the
    :class:`~repro.campaign.spec.RetryPolicy`, and the engine selection
    (host-side execution knobs cannot change a deterministic run's
    result -- the python and vector engines are bit-identical by
    contract, so either may serve a cached entry).
    """
    payload = {
        "config": scenario_to_dict(spec.point.config),
        "workload": (
            dataclasses.asdict(spec.point.workload)
            if spec.point.workload is not None
            else None
        ),
        "n_slots": spec.point.n_slots,
        "seed": list(spec.seed_entropy),
        "code_version": package_version(),
    }
    return fingerprint(payload)


def _payload_digest(payload: dict[str, Any]) -> str:
    """SHA-256 over the canonical JSON encoding of a document payload."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_json_default
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass(frozen=True)
class FsckReport:
    """What one :meth:`ResultStore.fsck` scan found (and removed)."""

    #: Files examined (runs, failures, and the spec snapshot if present).
    scanned: int
    #: Documents that parsed and passed their checksum.
    ok: int
    #: Pre-checksum documents accepted as-is (no digest to verify).
    legacy: int
    #: ``(path, reason)`` for every damaged file found.
    corrupt: tuple[tuple[str, str], ...] = ()
    #: Damaged files deleted (only with ``repair=True``).
    repaired: tuple[str, ...] = ()
    #: Leftover ``*.tmp`` files from interrupted writes (always safe to
    #: remove; deleted with ``repair=True``).
    stray_tmp: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """Whether the store holds no damaged entries (after any repair)."""
        return not self.corrupt or len(self.repaired) == len(self.corrupt)


class ResultStore:
    """Directory-backed store of finished campaign runs.

    Layout::

        <root>/
          campaign.json        # spec snapshot of the last campaign run here
          runs/<key>.json      # one checksummed document per completed run
          failed/<key>.json    # quarantine record per poisoned run
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.runs_dir = self.root / "runs"
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.failed_dir = self.root / "failed"

    # -- campaign snapshot ---------------------------------------------

    @property
    def spec_path(self) -> Path:
        """Where the campaign spec snapshot lives in this store."""
        return self.root / "campaign.json"

    def save_campaign(self, campaign: Campaign) -> Path:
        """Snapshot the campaign spec (so ``status``/``report`` need only
        the store directory).  Stored as plain JSON (no checksum
        envelope): the snapshot is meant to be humanly inspectable and
        is fully validated by ``Campaign.from_dict`` on load."""
        return self._write_json(self.spec_path, campaign.to_dict())

    def load_campaign(self) -> Campaign:
        """The campaign last saved into this store.

        Raises :class:`StoreIntegrityError` (not a bare
        ``JSONDecodeError``) when the snapshot is truncated or
        hand-edited into invalid JSON.
        """
        if not self.spec_path.exists():
            raise FileNotFoundError(
                f"no campaign snapshot at {self.spec_path}; "
                "run the campaign (or pass --spec) first"
            )
        try:
            raw = json.loads(self.spec_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreIntegrityError(
                self.spec_path, f"invalid JSON ({exc})"
            ) from exc
        return Campaign.from_dict(raw)

    # -- run rows -------------------------------------------------------

    def path_for(self, key: str) -> Path:
        """The file one run's document lives at."""
        return self.runs_dir / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def save(self, key: str, row: dict[str, Any]) -> Path:
        """Persist one finished run atomically (checksummed envelope).

        A successful save also clears any quarantine record left by
        earlier failed attempts of the same run.
        """
        path = self._write_document(self.path_for(key), row)
        self.clear_failure(key)
        return path

    def load(self, key: str) -> dict[str, Any]:
        """Load one cached run's document back, verifying its checksum.

        Raises :class:`StoreIntegrityError` for truncated/corrupt JSON
        or a digest mismatch; accepts pre-checksum (legacy) documents
        as-is.
        """
        return self._read_document(self.path_for(key))

    def is_valid(self, key: str) -> bool:
        """Whether a cached document exists *and* passes verification.

        The executor's resume scan uses this: a damaged entry reads as
        "not cached" and is recomputed (the atomic re-write replaces
        it), instead of surfacing as a corrupt report row.
        """
        if key not in self:
            return False
        try:
            self._read_document(self.path_for(key))
        except StoreError:
            return False
        return True

    def keys(self) -> list[str]:
        """Keys of every cached run, sorted (content order, not grid
        order -- the report re-orders via the grid)."""
        return sorted(p.stem for p in self.runs_dir.glob("*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.runs_dir.glob("*.json"))

    # -- quarantine records ---------------------------------------------

    def failure_path_for(self, key: str) -> Path:
        """The file one run's quarantine record lives at."""
        return self.failed_dir / f"{key}.json"

    def save_failure(self, key: str, doc: dict[str, Any]) -> Path:
        """Persist a structured quarantine record for a poisoned run."""
        self.failed_dir.mkdir(parents=True, exist_ok=True)
        return self._write_document(self.failure_path_for(key), doc)

    def load_failure(self, key: str) -> dict[str, Any]:
        """Load one quarantine record back (checksum-verified)."""
        return self._read_document(self.failure_path_for(key))

    def failure_keys(self) -> list[str]:
        """Keys of every quarantined run, sorted."""
        if not self.failed_dir.is_dir():
            return []
        return sorted(p.stem for p in self.failed_dir.glob("*.json"))

    def clear_failure(self, key: str) -> None:
        """Drop a run's quarantine record (no-op when absent)."""
        try:
            self.failure_path_for(key).unlink()
        except FileNotFoundError:
            pass

    # -- integrity ------------------------------------------------------

    def fsck(self, repair: bool = False) -> FsckReport:
        """Scan every store file; with ``repair`` evict damaged ones.

        Checks the spec snapshot (valid JSON + a loadable campaign),
        every run document and every quarantine record (valid JSON +
        checksum), and reports stray ``*.tmp`` files from interrupted
        writes.  ``repair=True`` deletes damaged documents and stray tmp
        files -- eviction, never rewriting: a missing entry is simply
        recomputed by the next ``campaign run``.
        """
        scanned = ok = legacy = 0
        corrupt: list[tuple[str, str]] = []
        repaired: list[str] = []

        def _check(path: Path) -> None:
            nonlocal scanned, ok, legacy
            scanned += 1
            try:
                raw = json.loads(path.read_text())
            except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
                corrupt.append((str(path), f"invalid JSON ({exc})"))
                return
            if not (isinstance(raw, dict) and "sha256" in raw):
                legacy += 1
                return
            payload = raw.get("payload")
            if not isinstance(payload, dict):
                corrupt.append((str(path), "envelope has no payload object"))
                return
            digest = _payload_digest(payload)
            if digest != raw["sha256"]:
                corrupt.append(
                    (str(path),
                     f"checksum mismatch (stored {raw['sha256'][:12]}..., "
                     f"computed {digest[:12]}...)")
                )
                return
            ok += 1

        if self.spec_path.exists():
            scanned += 1
            try:
                Campaign.from_dict(json.loads(self.spec_path.read_text()))
                ok += 1
            except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
                corrupt.append((str(self.spec_path), f"invalid JSON ({exc})"))
            except (ValueError, TypeError, KeyError) as exc:
                corrupt.append(
                    (str(self.spec_path), f"not a valid campaign spec ({exc})")
                )
        for directory in (self.runs_dir, self.failed_dir):
            if not directory.is_dir():
                continue
            for path in sorted(directory.glob("*.json")):
                _check(path)

        stray = [
            str(p)
            for p in sorted(self.root.rglob("*.tmp"))
        ]
        if repair:
            for path_str, _reason in corrupt:
                # The snapshot is the campaign's identity; evict data
                # files only, and let the user replace a broken snapshot
                # by re-running with --spec.
                if path_str == str(self.spec_path):
                    continue
                Path(path_str).unlink(missing_ok=True)
                repaired.append(path_str)
            for path_str in stray:
                Path(path_str).unlink(missing_ok=True)
        return FsckReport(
            scanned=scanned,
            ok=ok,
            legacy=legacy,
            corrupt=tuple(corrupt),
            repaired=tuple(repaired),
            stray_tmp=tuple(stray),
        )

    # -- internals ------------------------------------------------------

    def _write_document(self, path: Path, payload: dict[str, Any]) -> Path:
        """Atomic write of a checksummed document envelope."""
        return self._write_json(
            path, {"payload": payload, "sha256": _payload_digest(payload)}
        )

    def _read_document(self, path: Path) -> dict[str, Any]:
        """Read a document back, verifying envelope + checksum."""
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise
        except (OSError, UnicodeDecodeError) as exc:
            raise StoreIntegrityError(path, f"unreadable ({exc})") from exc
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreIntegrityError(
                path, f"truncated or invalid JSON ({exc})"
            ) from exc
        if not isinstance(raw, dict):
            raise StoreIntegrityError(path, "document is not a JSON object")
        if "sha256" not in raw:
            # Pre-integrity-layer document: nothing to verify against.
            return raw
        payload = raw.get("payload")
        if not isinstance(payload, dict):
            raise StoreIntegrityError(path, "envelope has no payload object")
        digest = _payload_digest(payload)
        if digest != raw["sha256"]:
            raise StoreIntegrityError(
                path,
                f"checksum mismatch (stored {str(raw['sha256'])[:12]}..., "
                f"computed {digest[:12]}...)",
            )
        return payload

    def _write_json(self, path: Path, payload: dict[str, Any]) -> Path:
        """Atomic JSON write: tmp sibling + rename."""
        text = json.dumps(
            payload, indent=2, sort_keys=True, default=_json_default
        )
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(text + "\n")
        os.replace(tmp, path)
        return path
