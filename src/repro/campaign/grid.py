"""Grid expansion: from a campaign spec to concrete runs.

The expansion is pure and deterministic: the same :class:`Campaign`
always yields the same ordered sequence of :class:`GridPoint` and
:class:`RunSpec` values, which is what makes run indices (and therefore
seeds and store keys) stable across resumes and across machines.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any

from repro.campaign.spec import (
    SCENARIO_AXES,
    Campaign,
    WorkloadSpec,
)
from repro.sim.runner import ScenarioConfig


@dataclass(frozen=True)
class GridPoint:
    """One cell of the campaign grid: a fully resolved scenario.

    ``overrides`` records just the axis values that distinguish this
    point (in axis order), while ``config``/``workload``/``n_slots``
    carry the resolved inputs a run needs.
    """

    #: Position in row-major expansion order (0-based).
    index: int
    #: ``(axis, value)`` pairs in axis declaration order.
    overrides: tuple[tuple[str, Any], ...]
    config: ScenarioConfig
    workload: WorkloadSpec | None
    n_slots: int


@dataclass(frozen=True)
class RunSpec:
    """One executable run: a grid point plus a replication index.

    ``seed_entropy`` is the run's whole random identity: a
    :class:`numpy.random.SeedSequence` built from it drives workload
    generation and the simulation itself, so the result is a pure
    function of ``(campaign spec, point index, replication)``.

    ``engine`` is the campaign's engine selection, carried along so the
    executor can build the right core; like the retry policy it is a
    host-side knob outside the run's cache key (both engines are
    bit-identical by contract).
    """

    point: GridPoint
    replication: int
    master_seed: int
    engine: str | None = None

    @property
    def seed_entropy(self) -> tuple[int, int, int]:
        """Entropy tuple for this run's :class:`numpy.random.SeedSequence`."""
        return (self.master_seed, self.point.index, self.replication)


def expand_grid(campaign: Campaign) -> list[GridPoint]:
    """All grid points of a campaign, in row-major axis order.

    The last declared axis varies fastest (like nested for-loops over
    the axes as written).  An axis-less campaign yields the single base
    point.
    """
    points: list[GridPoint] = []
    names = campaign.axis_names
    value_lists = [values for _, values in campaign.axes]
    for index, combo in enumerate(itertools.product(*value_lists)):
        overrides = tuple(zip(names, combo))
        config = campaign.base
        workload = campaign.workload
        n_slots = campaign.n_slots
        scenario_changes: dict[str, Any] = {}
        workload_changes: dict[str, Any] = {}
        for axis, value in overrides:
            if axis == "n_slots":
                n_slots = int(value)
            elif axis in SCENARIO_AXES:
                scenario_changes[axis] = value
            else:  # validated as a workload axis by Campaign
                workload_changes[axis] = value
        if scenario_changes:
            config = dataclasses.replace(config, **scenario_changes)
        if workload_changes:
            assert workload is not None  # Campaign.__post_init__ guarantees
            workload = dataclasses.replace(workload, **workload_changes)
        points.append(
            GridPoint(
                index=index,
                overrides=overrides,
                config=config,
                workload=workload,
                n_slots=n_slots,
            )
        )
    return points


def expand_runs(campaign: Campaign) -> Iterator[RunSpec]:
    """Every run of the campaign: grid points x replications, in order.

    Iteration order is the canonical report order: point-major, then
    replication -- the same order a serial uninterrupted execution would
    produce results in.
    """
    for point in expand_grid(campaign):
        for replication in range(campaign.n_replications):
            yield RunSpec(
                point=point,
                replication=replication,
                master_seed=campaign.master_seed,
                engine=campaign.engine,
            )
