"""Declarative campaign specifications.

A :class:`Campaign` names an experiment design: a base
:class:`~repro.sim.runner.ScenarioConfig`, axes of parameter overrides
whose Cartesian product spans the design space, a replication count, and
the slot budget per run.  The spec is a plain value -- hashable,
JSON-round-trippable -- so the same campaign can be launched from
Python, from a committed JSON file, or resumed weeks later against the
same on-disk store (see :mod:`repro.campaign.store`).

Axes override either scenario fields (``protocol``, ``n_nodes``,
``drop_late``, ...), workload fields of the per-run random workload
(``utilisation``, ``n_connections``, ...), or the special axis
``n_slots``.  Axis order is significant: the grid expands in
row-major order over the axes as declared, which fixes run indices,
seeds, and therefore the cache keys of every run.
"""

from __future__ import annotations

import dataclasses
import json
import math
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.core.connection import LogicalRealTimeConnection
from repro.core.policy import POLICIES
from repro.sim.fault_models import FaultConfig
from repro.sim.runner import ENGINES, PROTOCOLS, ScenarioConfig
from repro.traffic.sweeps import WORKLOAD_PROFILES


@dataclass(frozen=True)
class WorkloadSpec:
    """Random periodic workload drawn fresh from each run's seed.

    Replications of a grid point share these parameters but draw
    independent connection sets (and arrival noise) from their own
    seeds, so replicated campaign metrics average over workload
    randomness the way :func:`repro.sim.batch.replicate` does.
    """

    #: Number of periodic connections in the set.
    n_connections: int = 12
    #: Target total utilisation the set is drawn at.
    utilisation: float = 0.7
    #: Log-uniform period range in slots.
    period_min: int = 10
    period_max: int = 200
    #: Generator family (see
    #: :data:`repro.traffic.sweeps.WORKLOAD_PROFILES`): ``"uniform"``
    #: (implicit deadlines), ``"industrial"`` (a ``tight_fraction``
    #: share of constrained-deadline sensor connections), or
    #: ``"ama-andam"`` (the fixed four-sensor case-study suite).
    profile: str = "uniform"
    #: Share of connections given tight deadlines (industrial profile).
    tight_fraction: float = 0.5
    #: Relative deadline as a fraction of the period for tight
    #: connections (industrial profile).
    tight_deadline_ratio: float = 0.4

    def __post_init__(self) -> None:
        if self.n_connections < 1:
            raise ValueError(
                f"need at least one connection, got {self.n_connections}"
            )
        if not 0.0 < self.utilisation:
            raise ValueError(
                f"utilisation must be positive, got {self.utilisation}"
            )
        if not 1 <= self.period_min <= self.period_max:
            raise ValueError(
                f"bad period range [{self.period_min}, {self.period_max}]"
            )
        if self.profile not in WORKLOAD_PROFILES:
            raise ValueError(
                f"unknown workload profile {self.profile!r}; "
                f"choose from {WORKLOAD_PROFILES}"
            )
        if not 0.0 <= self.tight_fraction <= 1.0:
            raise ValueError(
                f"tight_fraction must be in [0, 1], got {self.tight_fraction}"
            )
        if not 0.0 < self.tight_deadline_ratio <= 1.0:
            raise ValueError(
                "tight_deadline_ratio must be in (0, 1], "
                f"got {self.tight_deadline_ratio}"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor treats a run that fails or hangs.

    These are *host-side* knobs: they bound wall-clock behaviour
    (attempts, backoff, timeouts) without ever entering the run's cache
    key -- a run's **result** is a pure function of the spec no matter
    how many attempts it took to obtain.  Backoff jitter is derived from
    the run's own :class:`numpy.random.SeedSequence` (see
    :func:`repro.campaign.executor.backoff_delay`), so even the retry
    *timeline* is reproducible for a given spec.
    """

    #: Attempts per run before it is quarantined (>= 1).
    max_attempts: int = 3
    #: First retry delay in seconds; doubles per subsequent attempt.
    backoff_base_s: float = 0.5
    #: Ceiling on the (pre-jitter) backoff delay.
    backoff_max_s: float = 30.0
    #: Fraction of the delay randomised away (0 = none, 1 = full range);
    #: the draw is seeded from the run's entropy, hence deterministic.
    jitter: float = 0.5
    #: Per-attempt wall-clock budget in seconds (``None`` = unbounded).
    #: Enforced only by the sharded executor, which can kill a hung
    #: worker; the in-process serial path cannot preempt a run.
    run_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"need at least one attempt, got {self.max_attempts}"
            )
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError(
                f"backoff_max_s ({self.backoff_max_s}) must be >= "
                f"backoff_base_s ({self.backoff_base_s})"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.run_timeout_s is not None and self.run_timeout_s <= 0:
            raise ValueError(
                f"run_timeout_s must be positive, got {self.run_timeout_s}"
            )


#: Scenario fields an axis may override.  ``connections`` and
#: ``fault_config`` are compound values that belong in the base config,
#: not on an axis.
SCENARIO_AXES = frozenset(
    f.name for f in dataclasses.fields(ScenarioConfig)
) - {"connections", "fault_config"}

#: Workload fields an axis may override (requires a workload spec).
WORKLOAD_AXES = frozenset(f.name for f in dataclasses.fields(WorkloadSpec))

#: The non-config axis: per-run slot budget.
SPECIAL_AXES = frozenset({"n_slots"})


@dataclass(frozen=True)
class Campaign:
    """A declarative multi-scenario sweep.

    Parameters
    ----------
    name:
        Campaign identifier; used for the default store directory and
        recorded in every artifact.
    base:
        The scenario every grid point starts from.
    n_slots:
        Slots per run (overridable through an ``n_slots`` axis).
    axes:
        Mapping (or sequence of pairs) from axis name to the values it
        sweeps.  The grid is the Cartesian product in declaration
        order.
    workload:
        Optional per-run random workload; required when any axis
        targets a workload field.  When present it *replaces* the base
        scenario's connections.
    n_replications:
        Independent replications per grid point (>= 1).
    master_seed:
        Root of the deterministic per-run seed derivation.
    retry:
        Host-side failure handling (attempts, backoff, timeout); never
        part of any run's cache key.
    engine:
        Simulation engine for every run (``"python"`` or ``"vector"``);
        ``None`` follows the ``REPRO_ENGINE`` environment default.  Like
        ``retry`` this is a host-side execution knob, never part of any
        run's cache key: both engines are bit-identical by contract.
    """

    name: str
    base: ScenarioConfig
    n_slots: int
    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()
    workload: WorkloadSpec | None = None
    n_replications: int = 1
    master_seed: int = 0
    retry: RetryPolicy = RetryPolicy()
    engine: str | None = None

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name:
            raise ValueError(f"bad campaign name {self.name!r}")
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.n_slots < 0:
            raise ValueError(f"slot count must be >= 0, got {self.n_slots}")
        if self.n_replications < 1:
            raise ValueError(
                f"need at least one replication, got {self.n_replications}"
            )
        axes = self.axes
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        axes = tuple(
            (str(name), tuple(values)) for name, values in axes
        )
        object.__setattr__(self, "axes", axes)
        seen: set[str] = set()
        for axis, values in axes:
            if axis in seen:
                raise ValueError(f"duplicate axis {axis!r}")
            seen.add(axis)
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
            if axis in WORKLOAD_AXES and axis not in SCENARIO_AXES:
                if self.workload is None:
                    raise ValueError(
                        f"axis {axis!r} overrides the workload, but the "
                        "campaign declares no WorkloadSpec"
                    )
            elif axis not in SCENARIO_AXES and axis not in SPECIAL_AXES:
                known = sorted(SCENARIO_AXES | WORKLOAD_AXES | SPECIAL_AXES)
                raise ValueError(
                    f"unknown axis {axis!r}; choose from {known}"
                )
            if axis == "protocol":
                for v in values:
                    if v not in PROTOCOLS:
                        raise ValueError(
                            f"axis 'protocol' value {v!r} not in {PROTOCOLS}"
                        )
            if axis == "policy":
                for v in values:
                    if v not in POLICIES:
                        raise ValueError(
                            f"axis 'policy' value {v!r} not in {POLICIES}"
                        )
            if axis == "profile":
                for v in values:
                    if v not in WORKLOAD_PROFILES:
                        raise ValueError(
                            f"axis 'profile' value {v!r} not in "
                            f"{WORKLOAD_PROFILES}"
                        )

    # ------------------------------------------------------------------

    @property
    def axis_names(self) -> tuple[str, ...]:
        """Axis names in declaration (= expansion) order."""
        return tuple(name for name, _ in self.axes)

    @property
    def grid_size(self) -> int:
        """Number of grid points (product of axis lengths)."""
        return math.prod(len(values) for _, values in self.axes) if self.axes else 1

    @property
    def total_runs(self) -> int:
        """Grid points times replications."""
        return self.grid_size * self.n_replications

    # -- serialisation -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The spec as a JSON-ready dict (inverse of :meth:`from_dict`)."""
        from repro.obs.manifest import scenario_to_dict

        return {
            "name": self.name,
            "n_slots": self.n_slots,
            "replications": self.n_replications,
            "seed": self.master_seed,
            "base": scenario_to_dict(self.base),
            "workload": (
                dataclasses.asdict(self.workload)
                if self.workload is not None
                else None
            ),
            "axes": [[name, list(values)] for name, values in self.axes],
            "retry": dataclasses.asdict(self.retry),
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "Campaign":
        """Build a campaign from :meth:`to_dict` output / a JSON spec.

        ``axes`` accepts both the mapping form (``{"protocol": [...]}``,
        the natural hand-written spelling) and the order-preserving
        pair-list form ``[["protocol", [...]], ...]`` that
        :meth:`to_dict` emits.
        """
        known = {"name", "n_slots", "replications", "seed", "base",
                 "workload", "axes", "retry", "engine"}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown campaign keys: {sorted(unknown)}")
        base_raw = dict(raw.get("base") or {})
        conns = base_raw.pop("connections", None)
        if conns:
            base_raw["connections"] = tuple(
                _connection_from_dict(c) for c in conns
            )
        fault_raw = base_raw.pop("fault_config", None)
        if fault_raw:
            if "immortal_nodes" in fault_raw:
                fault_raw = dict(fault_raw)
                fault_raw["immortal_nodes"] = frozenset(
                    fault_raw["immortal_nodes"]
                )
            base_raw["fault_config"] = FaultConfig(**fault_raw)
        if "n_nodes" not in base_raw:
            raise ValueError("campaign base must declare n_nodes")
        base = ScenarioConfig(**base_raw)
        workload = raw.get("workload")
        if workload is not None:
            workload = WorkloadSpec(**workload)
        axes = raw.get("axes") or ()
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        else:
            axes = tuple((name, tuple(values)) for name, values in axes)
        retry_raw = raw.get("retry")
        retry = (
            RetryPolicy(**retry_raw) if retry_raw is not None else RetryPolicy()
        )
        return cls(
            name=raw["name"],
            base=base,
            n_slots=int(raw["n_slots"]),
            axes=axes,
            workload=workload,
            n_replications=int(raw.get("replications", 1)),
            master_seed=int(raw.get("seed", 0)),
            retry=retry,
            engine=raw.get("engine"),
        )

    @classmethod
    def from_json_file(cls, path: str | Path) -> "Campaign":
        """Load a campaign spec from a JSON file."""
        return cls.from_dict(json.loads(Path(path).read_text()))


def _connection_from_dict(raw: Mapping[str, Any]) -> LogicalRealTimeConnection:
    """Rebuild a connection from its JSON form (manifest convention)."""
    kwargs = dict(raw)
    kwargs["destinations"] = frozenset(kwargs["destinations"])
    return LogicalRealTimeConnection(**kwargs)
