"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover the common workflows without writing a script:

* ``info``     -- print the analytical model of a network configuration
  (Equations 1-6) for given N / link length / payload;
* ``simulate`` -- run a random periodic workload at a target utilisation
  on a chosen protocol and print the report;
* ``compare``  -- run the identical workload on every protocol and print
  a side-by-side table (the S1-style experiment, one command);
* ``analyze``  -- admission-test a set of (period, size) connection specs
  and print per-connection worst-case response times and headroom;
* ``inspect``  -- replay a JSONL event log (``simulate --events``) and
  print its reconstructed totals;
* ``campaign`` -- run / resume / report a declarative multi-scenario
  sweep from a JSON spec (see ``docs/CAMPAIGNS.md``);
* ``lint``     -- run the determinism / protocol-invariant static
  analysis suite over a source tree (see ``docs/LINTING.md``).

Examples::

    python -m repro info --nodes 16 --link-length 50
    python -m repro simulate --nodes 8 --utilisation 0.8 --slots 50000
    python -m repro simulate --nodes 8 --events run.jsonl --manifest
    python -m repro inspect run.jsonl
    python -m repro compare --nodes 8 --utilisation 0.9 --seed 7
    python -m repro analyze --nodes 8 --spec 10:2 --spec 25:5
    python -m repro campaign run --spec sweep.json --store results/ --jobs 4
    python -m repro campaign report --store results/ --csv sweep.csv
    python -m repro lint src/repro --baseline .repro-lint-baseline.json
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

import numpy as np

from repro.core.policy import POLICIES
from repro.core.priorities import TrafficClass
from repro.sim.fault_models import FaultConfig
from repro.sim.runner import (
    ENGINES,
    PROTOCOLS,
    RunOptions,
    ScenarioConfig,
    make_timing,
    run_scenario,
)
from repro.traffic.periodic import random_connection_set
from repro.traffic.sweeps import (
    WORKLOAD_PROFILES,
    random_workload,
    scale_connections_to_utilisation,
)


def _add_network_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--nodes", type=int, default=8, help="ring size N (default 8)"
    )
    parser.add_argument(
        "--link-length",
        type=float,
        default=10.0,
        metavar="M",
        help="link length in metres (default 10)",
    )
    parser.add_argument(
        "--payload",
        type=int,
        default=1024,
        metavar="BYTES",
        help="slot payload in bytes (default 1024)",
    )


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default=None,
        help="simulation engine: the pure-Python oracle or the "
        "bit-identical vectorized core (default: $REPRO_ENGINE, else "
        "python)",
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--utilisation",
        type=float,
        default=0.7,
        metavar="U",
        help="target total utilisation of the periodic set (default 0.7)",
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=12,
        metavar="K",
        help="number of periodic connections (default 12)",
    )
    parser.add_argument(
        "--slots",
        type=int,
        default=20_000,
        metavar="N",
        help="slots to simulate (default 20000)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload RNG seed (default 0)"
    )
    parser.add_argument(
        "--drop-late",
        action="store_true",
        help="drop messages that can no longer meet their deadline",
    )
    parser.add_argument(
        "--no-spatial-reuse",
        action="store_true",
        help="analysis mode: at most one transmission per slot",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="J",
        help="worker processes for replications / protocol fan-out "
        "(default 1 = serial; 0 = one per CPU); results are "
        "bit-identical to a serial run",
    )


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "faults", "stochastic fault injection (experiment S12)"
    )
    group.add_argument(
        "--fault-node-mttf",
        type=float,
        default=None,
        metavar="SLOTS",
        help="mean slots between transient node failures (default: off)",
    )
    group.add_argument(
        "--fault-node-mttr",
        type=float,
        default=200.0,
        metavar="SLOTS",
        help="mean node outage length in slots (default 200)",
    )
    group.add_argument(
        "--fault-collection-loss",
        type=float,
        default=0.0,
        metavar="P",
        help="per-slot collection-packet loss probability (default 0)",
    )
    group.add_argument(
        "--fault-distribution-loss",
        type=float,
        default=0.0,
        metavar="P",
        help="per-slot distribution-packet loss probability (default 0)",
    )
    group.add_argument(
        "--fault-burst-p-gb",
        type=float,
        default=0.0,
        metavar="P",
        help="Gilbert-Elliott good->bad transition probability (default 0)",
    )
    group.add_argument(
        "--fault-burst-p-bg",
        type=float,
        default=0.1,
        metavar="P",
        help="Gilbert-Elliott bad->good transition probability (default 0.1)",
    )
    group.add_argument(
        "--fault-clock-glitch",
        type=float,
        default=0.0,
        metavar="P",
        help="per-slot clock-glitch probability (default 0)",
    )
    group.add_argument(
        "--fault-timeout-us",
        type=float,
        default=2.0,
        metavar="US",
        help="recovery timeout in microseconds (default 2)",
    )
    group.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="fault RNG seed, independent of the workload seed (default 0)",
    )


def _fault_config(args: argparse.Namespace) -> FaultConfig | None:
    config = FaultConfig(
        node_mttf_slots=args.fault_node_mttf,
        node_mttr_slots=args.fault_node_mttr,
        p_collection_loss=args.fault_collection_loss,
        p_distribution_loss=args.fault_distribution_loss,
        ge_p_good_to_bad=args.fault_burst_p_gb,
        ge_p_bad_to_good=args.fault_burst_p_bg,
        p_clock_glitch=args.fault_clock_glitch,
        timeout_s=args.fault_timeout_us * 1e-6,
        seed=args.fault_seed,
    )
    return config if config.any_active() else None


def _draw_connections(args: argparse.Namespace, rng: np.random.Generator):
    """Draw the CLI's periodic workload.

    The default ``uniform`` profile keeps the historical draw-then-pin
    path (the CLI promises the achieved load lands on the target as
    exactly as integral sizes allow); the constrained-deadline profiles
    dispatch to :func:`repro.traffic.sweeps.random_workload`.
    """
    profile = getattr(args, "workload_profile", "uniform")
    if profile == "uniform":
        conns = random_connection_set(
            rng,
            n_nodes=args.nodes,
            n_connections=args.connections,
            total_utilisation=args.utilisation,
            period_range=(10, 200),
        )
        return scale_connections_to_utilisation(conns, args.utilisation)
    return random_workload(
        rng,
        n_nodes=args.nodes,
        n_connections=args.connections,
        utilisation=args.utilisation,
        period_range=(10, 200),
        profile=profile,
    )


def _build_config(args: argparse.Namespace, protocol: str) -> ScenarioConfig:
    rng = np.random.default_rng(args.seed)
    conns = _draw_connections(args, rng)
    return ScenarioConfig(
        n_nodes=args.nodes,
        protocol=protocol,
        policy=getattr(args, "policy", "edf"),
        link_length_m=args.link_length,
        slot_payload_bytes=args.payload,
        spatial_reuse=not args.no_spatial_reuse,
        drop_late=args.drop_late,
        connections=tuple(conns),
        fault_config=_fault_config(args),
    )


def cmd_info(args: argparse.Namespace) -> int:
    """The `info` subcommand: print the analytical model."""
    config = ScenarioConfig(
        n_nodes=args.nodes,
        link_length_m=args.link_length,
        slot_payload_bytes=args.payload,
    )
    t = make_timing(config)
    print(f"CCR-EDF network: N={args.nodes}, L={args.link_length} m/link, "
          f"payload {args.payload} B")
    print(f"  slot length (operating)   : {t.slot_length_s * 1e6:.3f} us")
    print(f"  min slot length (Eq. 2)   : {t.min_slot_length_s * 1e6:.3f} us")
    print(f"  worst hand-over (Eq. 1)   : {t.max_handover_time_s * 1e9:.1f} ns")
    print(f"  worst-case latency (Eq. 4): {t.worst_case_latency_s * 1e6:.3f} us")
    print(f"  U_max (Eq. 6)             : {t.u_max:.4f}")
    print(f"  guaranteed data rate      : "
          f"{t.guaranteed_data_rate_bit_per_s() / 1e9:.3f} Gbit/s")
    return 0


def _print_report(protocol: str, report) -> None:
    rt = report.class_stats(TrafficClass.RT_CONNECTION)
    print(f"protocol            : {protocol}")
    print(f"  slots simulated   : {report.slots_simulated}")
    print(f"  wall time         : {report.wall_time_s * 1e3:.3f} ms")
    print(f"  RT released       : {rt.released}")
    print(f"  RT delivered      : {rt.delivered}")
    print(f"  RT missed         : {rt.deadline_missed} "
          f"(ratio {rt.deadline_miss_ratio:.4f})")
    print(f"  RT mean latency   : {rt.mean_latency_slots:.2f} slots")
    print(f"  utilisation       : {report.utilisation:.4f}")
    print(f"  reuse factor      : {report.spatial_reuse_factor:.2f}")
    print(f"  break denials     : {report.break_denials}")
    avail = report.availability_stats
    if avail.total_fault_events or avail.recoveries:
        print(f"  -- availability --")
        print(f"  fault events      : {avail.total_fault_events} "
              f"({dict(avail.fault_events)})")
        print(f"  recoveries        : {avail.recoveries}")
        print(f"  slots lost        : {avail.slots_lost}")
        print(f"  availability      : {report.availability:.6f}")
        print(f"  mean recovery     : {avail.mean_time_to_recover_s * 1e6:.2f} us")
        print(f"  node fail/rejoin  : {avail.node_failures}/{avail.node_rejoins}")
        print(f"  RT missed (fault) : "
              f"{rt.deadline_missed_in_fault_window} of {rt.deadline_missed}")


def _build_replication(
    args: argparse.Namespace, rng: np.random.Generator
):
    """Replication builder for ``simulate --replications``.

    Module-level (not a closure) so it survives pickling into worker
    processes when ``--jobs`` fans replications out; the replication's
    generator redraws the whole workload, so replications differ in
    workload *and* arrival noise.
    """
    from repro.sim.runner import build_simulation

    conns = _draw_connections(args, rng)
    config = ScenarioConfig(
        n_nodes=args.nodes,
        protocol=args.protocol,
        policy=getattr(args, "policy", "edf"),
        link_length_m=args.link_length,
        slot_payload_bytes=args.payload,
        spatial_reuse=not args.no_spatial_reuse,
        drop_late=args.drop_late,
        connections=tuple(conns),
        fault_config=_fault_config(args),
    )
    return build_simulation(config, RunOptions(engine=args.engine))


#: Metrics reported by ``simulate --replications``.
_REPLICATION_METRICS = {
    "rt_miss_ratio": lambda r: r.class_stats(
        TrafficClass.RT_CONNECTION
    ).deadline_miss_ratio,
    "rt_mean_latency_slots": lambda r: r.class_stats(
        TrafficClass.RT_CONNECTION
    ).mean_latency_slots,
    "utilisation": lambda r: r.utilisation,
    "availability": lambda r: r.availability,
}


def _manifest_destination(args: argparse.Namespace):
    """Where ``--manifest`` should land (None when not requested)."""
    if args.manifest is None:
        return None
    from pathlib import Path

    from repro.obs.manifest import manifest_path_for

    if args.manifest:
        return Path(args.manifest)
    if args.events:
        return manifest_path_for(args.events)
    return Path("run.manifest.json")


def cmd_simulate(args: argparse.Namespace) -> int:
    """The `simulate` subcommand: one protocol, one workload."""
    import time as _time

    manifest_path = _manifest_destination(args)
    if args.replications > 1:
        if args.events or args.trace:
            print(
                "--events and --trace record one run; they cannot be "
                "combined with --replications > 1",
                file=sys.stderr,
            )
            return 2
        from functools import partial

        from repro.obs.manifest import RunManifest
        from repro.sim.batch import replicate

        print(f"replicating: {args.replications} seeds from master seed "
              f"{args.seed}, {args.jobs if args.jobs != 1 else 1} job(s)")
        t0 = _time.perf_counter()
        result = replicate(
            partial(_build_replication, args),
            n_slots=args.slots,
            metrics=_REPLICATION_METRICS,
            n_replications=args.replications,
            master_seed=args.seed,
            n_jobs=args.jobs,
            collect_registry=manifest_path is not None,
        )
        elapsed = _time.perf_counter() - t0
        print(f"protocol            : {args.protocol}")
        for name, summary in result.metrics.items():
            lo, hi = summary.confidence_interval()
            print(f"  {name:20s}: {summary.mean:.4f} "
                  f"(95% CI [{lo:.4f}, {hi:.4f}], n={summary.n})")
        if manifest_path is not None:
            manifest = RunManifest.collect(
                master_seed=args.seed,
                n_slots=args.slots,
                registry=result.registry,
                elapsed_s=elapsed,
                extra={
                    "argv": list(sys.argv),
                    "replications": args.replications,
                    "metrics": {
                        name: s.mean for name, s in result.metrics.items()
                    },
                },
            )
            manifest.write(manifest_path)
            print(f"manifest written    : {manifest_path}")
        return 0

    config = _build_config(args, args.protocol)
    achieved = sum(c.utilisation for c in config.connections)
    print(f"workload: {args.connections} connections, "
          f"U={achieved:.3f} (target {args.utilisation}), seed {args.seed}")
    profiler = None
    if args.profile:
        from repro.sim.profiling import PhaseProfiler

        profiler = PhaseProfiler()
    observer = None
    event_log = None
    if args.events:
        from repro.obs.events import EventDispatcher, JsonlEventLog

        observer = EventDispatcher()
        event_log = observer.add_sink(JsonlEventLog(args.events))
    trace = None
    if args.trace:
        from repro.sim.trace import SlotTrace

        trace = SlotTrace(max_records=args.trace_max)
    t0 = _time.perf_counter()
    report = run_scenario(
        config,
        n_slots=args.slots,
        options=RunOptions(
            profiler=profiler,
            trace=trace,
            observer=observer,
            engine=args.engine,
        ),
    )
    elapsed = _time.perf_counter() - t0
    if observer is not None:
        observer.close()
    _print_report(args.protocol, report)
    if event_log is not None:
        print(f"event log           : {args.events} "
              f"({event_log.events_written} events)")
    if trace is not None:
        print(f"trace               : {len(trace.records)} slot records")
        if trace.truncated:
            print(
                f"warning: trace truncated at {trace.max_records} records; "
                f"{trace.dropped} later slot records were dropped "
                f"(raise --trace-max, or stream with --events instead)",
                file=sys.stderr,
            )
    if manifest_path is not None:
        from repro.obs.manifest import RunManifest

        manifest = RunManifest.collect(
            scenario=config,
            master_seed=args.seed,
            n_slots=args.slots,
            report=report,
            profiler=profiler,
            elapsed_s=elapsed,
            extra={"argv": list(sys.argv), "events": args.events or None},
        )
        manifest.write(manifest_path)
        print(f"manifest written    : {manifest_path}")
    if profiler is not None:
        print("\nslot-loop phase profile:")
        print(profiler.format_table())
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """The `inspect` subcommand: replay an event log into totals."""
    from repro.obs.replay import format_summary, summarise_log

    try:
        summary = summarise_log(args.events)
    except FileNotFoundError:
        print(f"no such event log: {args.events}", file=sys.stderr)
        return 2
    except (OSError, ValueError) as exc:
        print(f"cannot replay {args.events}: {exc}", file=sys.stderr)
        return 2
    print(format_summary(summary))
    return 0


def _compare_one(args: argparse.Namespace, protocol: str):
    """One protocol's row of the comparison table.

    Module-level so ``compare --jobs`` can evaluate protocols in
    parallel worker processes; each worker rebuilds the identical
    workload from the shared seed.
    """
    config = _build_config(args, protocol)
    report = run_scenario(
        config, n_slots=args.slots, options=RunOptions(engine=args.engine)
    )
    rt = report.class_stats(TrafficClass.RT_CONNECTION)
    return (
        protocol,
        rt.deadline_miss_ratio,
        rt.mean_latency_slots,
        report.utilisation,
        report.spatial_reuse_factor,
        report.break_denials,
        report.availability,
    )


def cmd_compare(args: argparse.Namespace) -> int:
    """The `compare` subcommand: all protocols, identical workload."""
    if args.jobs != 1:
        from concurrent.futures import ProcessPoolExecutor
        from functools import partial

        from repro.sim.parallel import resolve_jobs

        jobs = min(resolve_jobs(args.jobs), len(PROTOCOLS))
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            rows = list(pool.map(partial(_compare_one, args), PROTOCOLS))
    else:
        rows = [_compare_one(args, protocol) for protocol in PROTOCOLS]
    achieved = sum(c.utilisation for c in _build_config(args, "ccr-edf").connections)
    print(f"workload: U={achieved:.3f}, {args.connections} connections, "
          f"seed {args.seed}, {args.slots} slots\n")
    header = (f"{'protocol':10s} {'miss':>8s} {'latency':>8s} {'util':>7s} "
              f"{'reuse':>6s} {'breaks':>7s} {'avail':>7s}")
    print(header)
    print("-" * len(header))
    for protocol, miss, lat, util, reuse, breaks, avail in rows:
        print(
            f"{protocol:10s} {miss:8.4f} {lat:8.2f} {util:7.4f} "
            f"{reuse:6.2f} {breaks:7d} {avail:7.4f}"
        )
    return 0


def _campaign_for(args: argparse.Namespace):
    """Resolve (campaign, store) for the campaign subcommands.

    ``--spec`` loads a JSON campaign spec; without it the spec snapshot
    saved in the store directory by a previous ``run`` is used.
    """
    from repro.campaign import Campaign, ResultStore

    store = ResultStore(args.store)
    if args.spec:
        campaign = Campaign.from_json_file(args.spec)
    else:
        campaign = store.load_campaign()
    return campaign, store


#: ``campaign run`` exit code: runs remain (limit / drain); resumable.
EXIT_CAMPAIGN_INCOMPLETE = 3
#: ``campaign run`` exit code: at least one run was quarantined.
EXIT_CAMPAIGN_QUARANTINED = 4


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """``campaign run``: execute the uncached remainder of a campaign.

    Exit codes: 0 = every run is in the store; 3 = incomplete but
    resumable (``--limit`` or a drain signal); 4 = one or more runs
    exhausted their attempt budget and were quarantined.
    """
    import dataclasses as _dataclasses
    import time as _time

    from repro.campaign import run_campaign

    try:
        campaign, store = _campaign_for(args)
    except (FileNotFoundError, ValueError, RuntimeError) as exc:
        print(f"cannot load campaign: {exc}", file=sys.stderr)
        return 2
    retry = campaign.retry
    if args.max_attempts is not None:
        retry = _dataclasses.replace(retry, max_attempts=args.max_attempts)
    if args.run_timeout is not None:
        retry = _dataclasses.replace(
            retry, run_timeout_s=args.run_timeout or None
        )
    if retry != campaign.retry:
        campaign = _dataclasses.replace(campaign, retry=retry)
    engine = getattr(args, "engine", None)
    if engine is not None and engine != campaign.engine:
        # Like the retry overrides above: a host-side knob, so changing
        # it never invalidates cached results.
        campaign = _dataclasses.replace(campaign, engine=engine)
    observer = None
    event_log = None
    if args.events:
        from repro.obs.events import EventDispatcher, JsonlEventLog

        observer = EventDispatcher()
        event_log = observer.add_sink(JsonlEventLog(args.events))
    print(f"campaign '{campaign.name}': {campaign.grid_size} grid points x "
          f"{campaign.n_replications} replications = "
          f"{campaign.total_runs} runs -> {store.root}")
    t0 = _time.perf_counter()
    try:
        summary = run_campaign(
            campaign, store, n_jobs=args.jobs, limit=args.limit,
            observer=observer,
        )
    finally:
        if observer is not None:
            observer.close()
    elapsed = _time.perf_counter() - t0
    print(f"  executed {summary.executed}, skipped {summary.skipped} cached, "
          f"{summary.remaining} remaining ({elapsed:.2f} s)")
    if summary.corrupt_replaced:
        print(f"  {summary.corrupt_replaced} corrupt cache entries replaced "
              "by re-runs")
    if summary.failed_attempts:
        print(f"  {summary.failed_attempts} failed attempts, "
              f"{summary.pool_rebuilds} worker-pool rebuilds")
    if event_log is not None:
        print(f"  event log: {args.events} "
              f"({event_log.events_written} events)")
    if summary.quarantined:
        print(f"  {summary.quarantined} runs QUARANTINED after "
              f"{campaign.retry.max_attempts} attempts each; see "
              f"{store.failed_dir}/ (rerun retries them with a fresh "
              "budget)", file=sys.stderr)
        return EXIT_CAMPAIGN_QUARANTINED
    if summary.interrupted:
        print("  interrupted; drained in-flight runs were persisted -- "
              "rerun to continue", file=sys.stderr)
        return EXIT_CAMPAIGN_INCOMPLETE
    if not summary.complete:
        print("  campaign incomplete; rerun to continue (cached runs are "
              "skipped)")
        return EXIT_CAMPAIGN_INCOMPLETE
    return 0


def cmd_campaign_fsck(args: argparse.Namespace) -> int:
    """``campaign fsck``: verify store integrity, optionally evicting
    damaged entries (exit 0 = clean / repaired, 1 = damage remains)."""
    from repro.campaign import ResultStore

    store = ResultStore(args.store)
    report = store.fsck(repair=args.repair)
    print(f"store {store.root}: {report.scanned} files scanned, "
          f"{report.ok} verified, {report.legacy} legacy (no checksum)")
    for path, reason in report.corrupt:
        print(f"  CORRUPT {path}: {reason}")
    for path in report.stray_tmp:
        print(f"  stray tmp file: {path}")
    if report.repaired or (args.repair and report.stray_tmp):
        removed = len(report.repaired) + len(report.stray_tmp)
        print(f"  evicted {removed} damaged/stray files; re-run the "
              "campaign to recompute them")
    elif report.corrupt or report.stray_tmp:
        print("  run with --repair to evict them (a rerun recomputes "
              "evicted entries)")
    return 0 if report.clean else 1


def cmd_campaign_status(args: argparse.Namespace) -> int:
    """``campaign status``: cached/pending/quarantined runs."""
    from repro.campaign import expand_runs, run_key

    try:
        campaign, store = _campaign_for(args)
    except (FileNotFoundError, ValueError, RuntimeError) as exc:
        print(f"cannot load campaign: {exc}", file=sys.stderr)
        return 2
    done = sum(1 for spec in expand_runs(campaign) if run_key(spec) in store)
    total = campaign.total_runs
    quarantined = len(store.failure_keys())
    print(f"campaign '{campaign.name}' in {store.root}")
    print(f"  grid     : {campaign.grid_size} points "
          f"({' x '.join(campaign.axis_names) or 'no axes'})")
    print(f"  runs     : {done}/{total} cached "
          f"({total - done} pending)")
    print(f"  store    : {len(store)} result files")
    if quarantined:
        print(f"  FAILED   : {quarantined} quarantined runs in "
              f"{store.failed_dir}/ (`campaign run` retries them)")
    return 0


def cmd_campaign_report(args: argparse.Namespace) -> int:
    """``campaign report``: aggregate the store into CSV/JSON artifacts."""
    from repro.campaign import CampaignReport

    try:
        campaign, store = _campaign_for(args)
    except (FileNotFoundError, ValueError, RuntimeError) as exc:
        print(f"cannot load campaign: {exc}", file=sys.stderr)
        return 2
    report = CampaignReport.from_store(campaign, store)
    if not report.complete and not args.partial:
        print(
            f"{len(report.missing)} of {campaign.total_runs} runs not "
            "cached yet; `campaign run` to finish, or --partial to "
            "report what is there",
            file=sys.stderr,
        )
        return 2
    if args.csv:
        from repro.obs.manifest import RunManifest

        manifest = RunManifest.collect(
            master_seed=campaign.master_seed,
            n_slots=campaign.n_slots,
            extra={"argv": list(sys.argv), "campaign": campaign.name,
                   "rows": len(report.rows)},
        )
        path = report.to_csv(args.csv, manifest=manifest)
        print(f"rows written        : {len(report.rows)} -> {path}")
    if args.json:
        path = report.to_json(args.json)
        print(f"json written        : {path}")
    for metric in args.marginal:
        try:
            marginals = report.marginals(metric)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        print(f"marginal means of {metric}:")
        for axis, per_value in marginals.items():
            for value, mean in per_value.items():
                print(f"  {axis:16s} = {value!s:12s}: {mean:.4f}")
    if not (args.csv or args.json or args.marginal):
        print(f"campaign '{campaign.name}': {len(report.rows)} rows "
              f"({len(report.missing)} missing); use --csv/--json/--marginal")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """The `analyze` subcommand: admission + WCRT for connection specs."""
    from repro.analysis.response_time import edf_worst_case_response_slots
    from repro.core.admission import AdmissionController
    from repro.core.connection import LogicalRealTimeConnection

    config = ScenarioConfig(
        n_nodes=args.nodes,
        link_length_m=args.link_length,
        slot_payload_bytes=args.payload,
    )
    timing = make_timing(config)
    controller = AdmissionController(timing)

    specs = []
    for raw in args.spec:
        try:
            period_s, size_s = raw.split(":")
            period, size = int(period_s), int(size_s)
        except ValueError:
            print(f"bad --spec {raw!r}: expected PERIOD:SIZE in slots")
            return 2
        specs.append((period, size))

    conns = []
    decisions = []
    for i, (period, size) in enumerate(specs):
        src = i % args.nodes
        dst = (src + 1 + i) % args.nodes
        if dst == src:
            dst = (src + 1) % args.nodes
        conn = LogicalRealTimeConnection(
            source=src,
            destinations=frozenset([dst]),
            period_slots=period,
            size_slots=size,
        )
        decisions.append(controller.request(conn))
        conns.append(conn)

    admitted = [c for c, d in zip(conns, decisions) if d.accepted]
    print(f"network: N={args.nodes}, U_max={timing.u_max:.4f}")
    print(f"{'spec':>10s} {'U':>7s} {'admitted':>9s} {'WCRT [slots]':>13s} "
          f"{'window':>7s}")
    for conn, decision in zip(conns, decisions):
        if decision.accepted:
            wcrt = edf_worst_case_response_slots(admitted, conn.connection_id)
            wcrt_str = str(wcrt)
        else:
            wcrt_str = "-"
        print(
            f"{conn.period_slots:>5d}:{conn.size_slots:<4d} "
            f"{conn.utilisation:7.3f} "
            f"{'yes' if decision.accepted else 'NO':>9s} "
            f"{wcrt_str:>13s} {conn.period_slots + 1:>7d}"
        )
    print(f"admitted utilisation: {controller.utilisation:.4f} "
          f"(headroom {controller.u_max - controller.utilisation:.4f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for `python -m repro`."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CCR-EDF fibre-ribbon ring network (IPDPS 2002) tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print the analytical network model")
    _add_network_args(p_info)
    p_info.set_defaults(func=cmd_info)

    p_sim = sub.add_parser("simulate", help="simulate a random workload")
    _add_network_args(p_sim)
    _add_workload_args(p_sim)
    p_sim.add_argument(
        "--protocol",
        choices=PROTOCOLS,
        default="ccr-edf",
        help="MAC protocol (default ccr-edf)",
    )
    p_sim.add_argument(
        "--policy",
        choices=POLICIES,
        default="edf",
        help="arbitration policy encoded into the priority field "
        "(default edf; rm and fifo require a TCMA protocol)",
    )
    p_sim.add_argument(
        "--workload-profile",
        choices=WORKLOAD_PROFILES,
        default="uniform",
        help="workload generator family (default uniform; industrial "
        "adds tight-deadline D<P sensor connections, ama-andam is the "
        "fixed four-sensor case-study suite)",
    )
    p_sim.add_argument(
        "--replications",
        type=int,
        default=1,
        metavar="R",
        help="independent replications to aggregate (default 1); with "
        "--jobs they run in parallel processes",
    )
    p_sim.add_argument(
        "--profile",
        action="store_true",
        help="time the slot loop per phase and print the table",
    )
    p_sim.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="stream typed events (slots, faults, recoveries, ...) to a "
        "JSONL log at PATH; replay it with `repro inspect`",
    )
    p_sim.add_argument(
        "--manifest",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="write a run manifest (scenario, seed, versions, host, "
        "profile) as JSON; with no PATH it lands next to --events "
        "(<events>.manifest.json) or at run.manifest.json",
    )
    p_sim.add_argument(
        "--trace",
        action="store_true",
        help="keep an in-memory per-slot trace (disables the idle "
        "fast-forward; see --trace-max)",
    )
    p_sim.add_argument(
        "--trace-max",
        type=int,
        default=100_000,
        metavar="N",
        help="slot records the trace retains before truncating "
        "(default 100000); a warning reports any dropped records",
    )
    _add_fault_args(p_sim)
    _add_engine_arg(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_cmp = sub.add_parser(
        "compare", help="run the same workload on every protocol"
    )
    _add_network_args(p_cmp)
    _add_workload_args(p_cmp)
    _add_fault_args(p_cmp)
    _add_engine_arg(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_ana = sub.add_parser(
        "analyze", help="admission + worst-case response times for specs"
    )
    _add_network_args(p_ana)
    p_ana.add_argument(
        "--spec",
        action="append",
        required=True,
        metavar="PERIOD:SIZE",
        help="connection spec in slots (repeatable), e.g. --spec 10:2",
    )
    p_ana.set_defaults(func=cmd_analyze)

    p_camp = sub.add_parser(
        "campaign",
        help="declarative multi-scenario sweeps (run / status / report)",
    )
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    def _add_campaign_common(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--store",
            required=True,
            metavar="DIR",
            help="result store directory (created on first run)",
        )
        p.add_argument(
            "--spec",
            metavar="JSON",
            default=None,
            help="campaign spec file; optional after the first run "
            "(the store keeps a snapshot)",
        )

    p_crun = camp_sub.add_parser(
        "run", help="execute the campaign's uncached runs into the store"
    )
    _add_campaign_common(p_crun)
    p_crun.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="J",
        help="worker processes (default 1 = serial; 0 = one per CPU); "
        "results are bit-identical regardless",
    )
    p_crun.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N new runs then stop (resume later; "
        "cached runs never count)",
    )
    p_crun.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        metavar="K",
        help="override the spec's retry budget: quarantine a run after "
        "K failed attempts (default: from spec, normally 3)",
    )
    p_crun.add_argument(
        "--run-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="override the spec's per-run wall-clock timeout (0 "
        "disables; default: from spec)",
    )
    p_crun.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="stream campaign-level events (retries, quarantines, pool "
        "rebuilds, corruption) to a JSONL log",
    )
    _add_engine_arg(p_crun)
    p_crun.set_defaults(func=cmd_campaign_run)

    p_cstat = camp_sub.add_parser(
        "status", help="show cached vs pending runs of a campaign"
    )
    _add_campaign_common(p_cstat)
    p_cstat.set_defaults(func=cmd_campaign_status)

    p_cfsck = camp_sub.add_parser(
        "fsck",
        help="verify result-store integrity (checksums, parseability)",
    )
    p_cfsck.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="result store directory to scan",
    )
    p_cfsck.add_argument(
        "--repair",
        action="store_true",
        help="evict corrupt/truncated entries and stray tmp files so "
        "the next `campaign run` recomputes them",
    )
    p_cfsck.set_defaults(func=cmd_campaign_fsck)

    p_crep = camp_sub.add_parser(
        "report", help="aggregate the store into CSV/JSON artifacts"
    )
    _add_campaign_common(p_crep)
    p_crep.add_argument(
        "--csv", metavar="PATH", default=None,
        help="write long-form rows as CSV (plus a manifest sibling)",
    )
    p_crep.add_argument(
        "--json", metavar="PATH", default=None,
        help="write rows + per-axis marginals as JSON",
    )
    p_crep.add_argument(
        "--marginal",
        action="append",
        default=[],
        metavar="METRIC",
        help="print per-axis marginal means of METRIC (repeatable), "
        "e.g. --marginal rt_miss_ratio",
    )
    p_crep.add_argument(
        "--partial",
        action="store_true",
        help="report even when some runs are not cached yet",
    )
    p_crep.set_defaults(func=cmd_campaign_report)

    p_lint = sub.add_parser(
        "lint",
        help="static analysis for determinism / protocol invariants",
    )

    def cmd_lint(args: argparse.Namespace) -> int:
        from repro.lint.cli import run as lint_run

        return lint_run(args)

    from repro.lint.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(p_lint)
    p_lint.set_defaults(func=cmd_lint)

    p_ins = sub.add_parser(
        "inspect",
        help="replay a JSONL event log and print reconstructed totals",
    )
    p_ins.add_argument(
        "events", metavar="EVENTS_JSONL", help="event log written by "
        "`simulate --events`",
    )
    p_ins.set_defaults(func=cmd_inspect)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
