"""Segment (link-set) algebra for spatial reuse.

A transmission occupies a contiguous run of ring links -- its *segment*.
Several transmissions may share one slot as long as their segments do not
overlap ("the ring can dynamically (for each slot) be partitioned into
segments to obtain a pipeline optical ring network", Section 2; see
Figure 2 where node 1 -> 3 and a multicast 4 -> {5, 1} proceed
simultaneously).

Segments are represented as integer bitmasks over link ids (bit ``l`` set =
link ``l`` occupied), the same representation the collection-packet link
reservation field uses (Figure 4), so the master's grant logic operates
directly on the over-fibre encoding.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.ring.topology import RingTopology


def links_for_unicast(topology: RingTopology, src: int, dst: int) -> int:
    """Link mask occupied by a single-destination transmission."""
    mask = 0
    for link in topology.path_links(src, dst):
        mask |= 1 << link
    return mask


def links_for_multicast(topology: RingTopology, src: int, dsts: Iterable[int]) -> int:
    """Link mask occupied by a multicast (or broadcast) transmission.

    On a unidirectional ring a multicast occupies the path from the source
    to its *farthest* destination (downstream distance); nearer
    destinations tap the data as it passes.
    """
    dsts = list(dsts)
    if not dsts:
        raise ValueError("multicast needs at least one destination")
    farthest = max(dsts, key=lambda d: topology.distance(src, d))
    if topology.distance(src, farthest) == 0:
        raise ValueError(f"multicast from {src} to itself is meaningless")
    return links_for_unicast(topology, src, farthest)


def masks_overlap(a: int, b: int) -> bool:
    """Whether two link masks share any link (cannot share a slot)."""
    if a < 0 or b < 0:
        raise ValueError("link masks must be non-negative")
    return (a & b) != 0


def mask_to_links(mask: int) -> tuple[int, ...]:
    """Expand a link mask into the sorted tuple of link ids it contains."""
    if mask < 0:
        raise ValueError("link masks must be non-negative")
    links = []
    link = 0
    while mask:
        if mask & 1:
            links.append(link)
        mask >>= 1
        link += 1
    return tuple(links)


def links_to_mask(links: Iterable[int]) -> int:
    """Build a link mask from an iterable of link ids."""
    mask = 0
    for link in links:
        if link < 0:
            raise ValueError(f"link ids must be non-negative, got {link}")
        mask |= 1 << link
    return mask


def is_contiguous_segment(topology: RingTopology, mask: int) -> bool:
    """Whether ``mask`` is one contiguous run of links on the ring.

    Valid transmissions always reserve contiguous segments; the master may
    use this to reject malformed requests.  The empty mask and the full
    ring both count as contiguous.
    """
    n = topology.n_nodes
    if mask < 0 or mask >= (1 << n):
        raise ValueError(f"link mask {mask:#x} does not fit N={n}")
    if mask == 0 or mask == (1 << n) - 1:
        return True
    # Rotate so that bit 0 is an unoccupied link preceded by an occupied
    # one; a contiguous mask then has exactly one 0->1 transition around
    # the ring.
    transitions = 0
    for link in range(n):
        here = (mask >> link) & 1
        nxt = (mask >> ((link + 1) % n)) & 1
        if here == 0 and nxt == 1:
            transitions += 1
    return transitions == 1
