"""The unidirectional fibre-ribbon ring (Figures 1 and 2).

Numbering convention used throughout the library:

* nodes are ``0 .. N-1``; traffic flows from node ``i`` to node
  ``(i + 1) % N`` (downstream);
* link ``l`` is the fibre-ribbon segment from node ``l`` to node
  ``(l + 1) % N``;
* the *downstream distance* from ``a`` to ``b`` is ``(b - a) % N`` -- the
  number of links a packet from ``a`` traverses to reach ``b``.

The paper numbers nodes from 1 and assumes all links the same length; the
model permits heterogeneous lengths, and every analytical quantity
(Equations 1 and 2) is computed from the actual lengths.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from functools import cached_property

from repro.phy.constants import DEFAULT_LINK_LENGTH_M
from repro.phy.fiber import FibreSegment


@dataclass(frozen=True)
class RingTopology:
    """Geometry of a unidirectional ring of ``n_nodes`` nodes.

    Parameters
    ----------
    n_nodes:
        Number of nodes (and of links) in the ring; at least 2.
    segments:
        One :class:`~repro.phy.fiber.FibreSegment` per link, where
        ``segments[l]`` is the link from node ``l`` downstream.  If omitted,
        all links default to :data:`~repro.phy.constants.DEFAULT_LINK_LENGTH_M`.
    """

    n_nodes: int
    segments: tuple[FibreSegment, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"a ring needs at least 2 nodes, got {self.n_nodes}")
        if not self.segments:
            object.__setattr__(
                self,
                "segments",
                tuple(FibreSegment(DEFAULT_LINK_LENGTH_M) for _ in range(self.n_nodes)),
            )
        if len(self.segments) != self.n_nodes:
            raise ValueError(
                f"expected {self.n_nodes} segments, got {len(self.segments)}"
            )

    @classmethod
    def uniform(
        cls, n_nodes: int, link_length_m: float = DEFAULT_LINK_LENGTH_M
    ) -> "RingTopology":
        """Ring with all links of the same length (the paper's assumption)."""
        return cls(
            n_nodes=n_nodes,
            segments=tuple(FibreSegment(link_length_m) for _ in range(n_nodes)),
        )

    # ------------------------------------------------------------------
    # Hop arithmetic
    # ------------------------------------------------------------------

    def downstream(self, node: int, hops: int = 1) -> int:
        """Node ``hops`` links downstream of ``node``."""
        self._check_node(node)
        return (node + hops) % self.n_nodes

    def upstream(self, node: int, hops: int = 1) -> int:
        """Node ``hops`` links upstream of ``node``."""
        self._check_node(node)
        return (node - hops) % self.n_nodes

    def distance(self, src: int, dst: int) -> int:
        """Downstream distance (number of links) from ``src`` to ``dst``."""
        self._check_node(src)
        self._check_node(dst)
        return (dst - src) % self.n_nodes

    def path_links(self, src: int, dst: int) -> tuple[int, ...]:
        """The links a packet from ``src`` to ``dst`` traverses, in order.

        A transmission to oneself is meaningless on this ring and raises.
        """
        d = self.distance(src, dst)
        if d == 0:
            raise ValueError(f"source and destination are the same node ({src})")
        return tuple((src + i) % self.n_nodes for i in range(d))

    # ------------------------------------------------------------------
    # Geometry-derived delays
    # ------------------------------------------------------------------

    @cached_property
    def total_length_m(self) -> float:
        """Circumference of the ring in metres."""
        return sum(seg.length_m for seg in self.segments)

    @cached_property
    def mean_link_length_m(self) -> float:
        """Average link length ``L`` used by Equation (1)."""
        return self.total_length_m / self.n_nodes

    @cached_property
    def ring_propagation_delay_s(self) -> float:
        """Propagation delay around the whole ring, ``t_prop`` of Eq. (2)."""
        return sum(seg.propagation_delay_s for seg in self.segments)

    def propagation_delay_s(self, src: int, dst: int) -> float:
        """Propagation delay along the downstream path ``src`` -> ``dst``."""
        return sum(self.segments[l].propagation_delay_s for l in self.path_links(src, dst))

    def handover_delay_s(self, old_master: int, new_master: int) -> float:
        """Clock hand-over gap when mastership moves between two nodes.

        Equation (1): the gap is the propagation delay of the clock-stop
        indication from the old master to the new one, ``D`` segments
        downstream.  Hand-over to the same node keeps the clock running
        (no gap); hand-over to the upstream neighbour is the worst case,
        ``D = N - 1``.
        """
        self._check_node(old_master)
        self._check_node(new_master)
        if old_master == new_master:
            return 0.0
        return self.propagation_delay_s(old_master, new_master)

    @cached_property
    def max_handover_delay_s(self) -> float:
        """Worst-case hand-over gap, ``t_handover_max`` (``D = N - 1``).

        With heterogeneous links this is the maximum over all ordered node
        pairs, which is attained by excluding the shortest single link
        from the full ring.
        """
        shortest = min(seg.propagation_delay_s for seg in self.segments)
        return self.ring_propagation_delay_s - shortest

    # ------------------------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.n_nodes):
            raise ValueError(f"node id {node} out of range for N={self.n_nodes}")

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(self.n_nodes)

    def links(self) -> range:
        """Iterate over link ids."""
        return range(self.n_nodes)
