"""Unidirectional pipelined ring topology and segment algebra.

* :mod:`repro.ring.topology` -- the ring itself: node/link numbering, hop
  arithmetic, per-segment lengths and propagation delays;
* :mod:`repro.ring.segments` -- segment (link-set) computation for
  single-destination, multicast and broadcast transmissions, plus the
  overlap tests that decide whether two transmissions can share a slot
  through spatial reuse.
"""

from repro.ring.topology import RingTopology
from repro.ring.segments import (
    links_for_multicast,
    links_for_unicast,
    masks_overlap,
    mask_to_links,
    links_to_mask,
)

__all__ = [
    "RingTopology",
    "links_for_multicast",
    "links_for_unicast",
    "masks_overlap",
    "mask_to_links",
    "links_to_mask",
]
