"""Experiment S3 -- utilisation and hand-over gap figures.

Section 8 promises "hard numbers on e.g. hand over time and actual
figures of utilisation".  This bench produces them: the measured
utilisation at full load versus the U_max floor, and the distribution of
hand-over distances (the variable-gap cost of the EDF hand-over
strategy) versus CC-FPR's constant gap.
"""

import numpy as np
from conftest import print_table

from repro.core.priorities import TrafficClass
from repro.sim.runner import ScenarioConfig, make_timing, run_scenario
from repro.traffic.periodic import random_connection_set
from repro.traffic.sweeps import scale_connections_to_utilisation


def test_s3_utilisation_at_full_load(run_once, benchmark):
    def sweep():
        rows = []
        rng = np.random.default_rng(31)
        for n in (4, 8, 16):
            base = random_connection_set(
                rng, n, 2 * n, 0.5, period_range=(10, 100)
            )
            conns = scale_connections_to_utilisation(base, 0.98)
            config = ScenarioConfig(n_nodes=n, connections=tuple(conns))
            timing = make_timing(config)
            report = run_scenario(config, n_slots=20_000)
            rows.append(
                (
                    n,
                    timing.u_max,
                    report.utilisation,
                    report.mean_gap_s * 1e9,
                    timing.max_handover_time_s * 1e9,
                )
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "S3: measured utilisation at ~full load vs the U_max floor",
        ["N", "U_max (floor)", "measured util", "mean gap [ns]",
         "worst gap [ns]"],
        rows,
    )
    for n, u_max, measured, mean_gap, worst_gap in rows:
        # U_max is the pessimistic floor; actual gaps are shorter.
        assert measured >= u_max - 1e-9
        assert mean_gap <= worst_gap
    benchmark.extra_info["n_points"] = len(rows)


def test_s3_gap_distribution(run_once, benchmark):
    """The histogram of hand-over distances: the 'variable gap' price."""

    def measure():
        rng = np.random.default_rng(17)
        base = random_connection_set(rng, 8, 16, 0.5, period_range=(10, 100))
        conns = scale_connections_to_utilisation(base, 0.9)
        out = {}
        for proto in ("ccr-edf", "ccfpr"):
            config = ScenarioConfig(
                n_nodes=8, protocol=proto, connections=tuple(conns)
            )
            report = run_scenario(config, n_slots=20_000)
            total = sum(report.handover_hops.values())
            out[proto] = {
                d: report.handover_hops.get(d, 0) / total for d in range(8)
            }
        return out

    hists = run_once(measure)
    rows = [
        (d, hists["ccr-edf"][d], hists["ccfpr"][d]) for d in range(8)
    ]
    print_table(
        "S3b: hand-over distance distribution (fraction of slots)",
        ["hops", "ccr-edf", "ccfpr"],
        rows,
    )
    # CC-FPR: all mass at one hop.  CCR-EDF: mass at 0 (master retained)
    # plus a spread of longer jumps.
    assert hists["ccfpr"][1] > 0.99
    assert hists["ccr-edf"][0] > 0.1
    assert sum(hists["ccr-edf"][d] for d in range(2, 8)) > 0.05
    benchmark.extra_info["edf_zero_hop_fraction"] = hists["ccr-edf"][0]


def test_s3_idle_network_pays_nothing(run_once, benchmark):
    """CCR-EDF's master parks when idle (no gaps); CC-FPR rotates."""

    def measure():
        rows = []
        for proto in ("ccr-edf", "ccfpr", "tdma"):
            config = ScenarioConfig(n_nodes=8, protocol=proto)
            report = run_scenario(config, n_slots=2000)
            rows.append((proto, report.gap_time_s * 1e6, report.utilisation))
        return rows

    rows = run_once(measure)
    print_table(
        "S3c: idle-network hand-over overhead",
        ["protocol", "total gap time [us]", "utilisation"],
        rows,
    )
    gaps = {proto: gap for proto, gap, _ in rows}
    assert gaps["ccr-edf"] == 0.0
    assert gaps["ccfpr"] > 0.0
    benchmark.extra_info["ccfpr_idle_gap_us"] = gaps["ccfpr"]
