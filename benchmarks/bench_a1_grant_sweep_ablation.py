"""Ablation A1 -- the priority-ordered greedy grant sweep vs the
throughput-optimal packing.

DESIGN.md design choice: the master grants in strict priority order
("the list of requests is sorted in the same way as the local queues"),
which protects urgency but can leave throughput on the table -- a long
urgent segment blocks several short ones.  This ablation measures the
gap between the sweep's grant count and the maximum-cardinality
compatible set, over random request mixes and over real simulation
workloads.  The result quantifies what the protocol pays for its
real-time discipline (typically only a few percent).
"""

import numpy as np
from conftest import print_table

from repro.analysis.optimal_grants import (
    greedy_priority_grant_count,
    max_compatible_requests,
)
from repro.ring.segments import links_to_mask
from repro.ring.topology import RingTopology


def random_requests(rng, n, k, max_len):
    reqs = []
    for _ in range(k):
        start = int(rng.integers(n))
        length = int(rng.integers(1, max_len + 1))
        mask = links_to_mask([(start + i) % n for i in range(length)])
        prio = int(rng.integers(1, 32))
        reqs.append((prio, mask))
    return reqs


def test_a1_greedy_vs_optimal_random(run_once, benchmark):
    def sweep():
        rows = []
        rng = np.random.default_rng(101)
        for n, max_len in ((8, 3), (8, 7), (16, 4), (16, 12)):
            ring = RingTopology.uniform(n)
            greedy_total = optimal_total = 0
            slots = 2000
            for _ in range(slots):
                k = int(rng.integers(1, n + 1))
                reqs = random_requests(rng, n, k, max_len)
                forbidden = 1 << int(rng.integers(n))
                greedy_total += greedy_priority_grant_count(
                    ring, reqs, forbidden
                )
                optimal_total += max_compatible_requests(
                    ring, [m for _, m in reqs], forbidden
                )
            rows.append(
                (
                    n,
                    max_len,
                    greedy_total / slots,
                    optimal_total / slots,
                    greedy_total / optimal_total,
                )
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "A1: grants per slot, priority-greedy sweep vs optimal packing "
        "(2000 random slots each)",
        ["N", "max path len", "greedy/slot", "optimal/slot", "efficiency"],
        rows,
    )
    for n, max_len, greedy, optimal, eff in rows:
        assert greedy <= optimal + 1e-12
        # The sweep stays close to optimal: local traffic ~always, long
        # paths within ~75%.
        assert eff > 0.75
    benchmark.extra_info["efficiencies"] = [r[4] for r in rows]


def test_a1_priority_discipline_is_the_point(run_once, benchmark):
    """Show *why* the sweep is right anyway: in every random slot the
    highest-priority feasible request is granted by the sweep, while the
    optimal packing would drop it in a measurable fraction of slots."""

    def measure():
        rng = np.random.default_rng(202)
        ring = RingTopology.uniform(8)
        slots = 3000
        hp_dropped_by_packing = 0
        for _ in range(slots):
            reqs = random_requests(rng, 8, 6, 6)
            masks = [m for _, m in reqs]
            hp_mask = max(reqs, key=lambda pm: pm[0])[1]
            # Does some maximum-cardinality packing exclude the hp mask?
            best_with_all = max_compatible_requests(ring, masks)
            best_without_hp = max_compatible_requests(
                ring, [m for m in masks if m != hp_mask]
            )
            if best_without_hp >= best_with_all:
                # A packing of maximum size exists that omits the hp
                # request: a throughput-first master might starve it.
                hp_dropped_by_packing += 1
        return slots, hp_dropped_by_packing

    slots, dropped = run_once(measure)
    print_table(
        "A1b: slots where a max-throughput packing could omit the most "
        "urgent request",
        ["slots", "hp-at-risk slots", "fraction"],
        [(slots, dropped, dropped / slots)],
    )
    assert dropped > 0, "the risk the priority sweep eliminates must exist"
    benchmark.extra_info["hp_at_risk_fraction"] = dropped / slots
