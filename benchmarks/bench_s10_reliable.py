"""Experiment S10 -- reliable transmission over a lossy channel.

The ack-piggybacking design of refs [4][11] (modelled as one extra slot
of the message's own traffic per lost packet, zero control overhead):
goodput, retransmission overhead and latency inflation across loss
rates, and the loss rate at which a half-loaded guaranteed workload
starts missing deadlines (retransmissions consume the schedulability
slack).
"""

import numpy as np
from conftest import print_table

from repro.core.connection import LogicalRealTimeConnection
from repro.core.priorities import TrafficClass
from repro.services.reliable import PacketLossModel, ReliableStats
from repro.sim.runner import RunOptions, ScenarioConfig, build_simulation


def workload(n, period=16, size=2):
    return tuple(
        LogicalRealTimeConnection(
            source=i,
            destinations=frozenset([(i + 2) % n]),
            period_slots=period,
            size_slots=size,
            phase_slots=2 * i,
        )
        for i in range(n)
    )


def test_s10_goodput_and_latency_vs_loss(run_once, benchmark):
    n = 8

    def sweep():
        rows = []
        for loss_p in (0.0, 0.01, 0.05, 0.1, 0.2):
            config = ScenarioConfig(n_nodes=n, connections=workload(n))
            loss = (
                PacketLossModel(loss_p, np.random.default_rng(10))
                if loss_p
                else None
            )
            sim = build_simulation(config, RunOptions(loss_model=loss))
            report = sim.run(20_000)
            stats = ReliableStats.from_simulation(sim)
            rt = report.class_stats(TrafficClass.RT_CONNECTION)
            rows.append(
                (
                    loss_p,
                    stats.goodput_fraction,
                    stats.retransmission_overhead,
                    rt.mean_latency_slots,
                    rt.deadline_miss_ratio,
                )
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "S10: reliable transmission vs packet-loss rate (U=0.5 RT load)",
        ["loss p", "goodput", "retx overhead", "RT mean latency",
         "RT miss ratio"],
        rows,
    )
    # Goodput tracks 1-p; overhead tracks p/(1-p); latency rises with p.
    for loss_p, goodput, overhead, latency, _ in rows:
        if loss_p:
            assert abs(goodput - (1 - loss_p)) < 0.05
            assert abs(overhead - loss_p / (1 - loss_p)) < 0.05
    latencies = [r[3] for r in rows]
    assert latencies == sorted(latencies)
    # At modest loss, the 8x slack absorbs every retransmission.
    assert all(r[4] == 0.0 for r in rows if r[0] <= 0.1)
    benchmark.extra_info["max_loss_tested"] = rows[-1][0]


def test_s10_loss_erodes_schedulability_slack(run_once, benchmark):
    """A tighter workload (U=0.75): heavy loss pushes effective demand
    past capacity and deadlines start falling."""
    n = 8

    def sweep():
        rows = []
        for loss_p in (0.0, 0.2, 0.4):
            config = ScenarioConfig(
                n_nodes=n,
                connections=workload(n, period=32, size=3),  # U = 0.75
                spatial_reuse=False,
                drop_late=True,
            )
            loss = (
                PacketLossModel(loss_p, np.random.default_rng(11))
                if loss_p
                else None
            )
            sim = build_simulation(config, RunOptions(loss_model=loss))
            report = sim.run(20_000)
            rt = report.class_stats(TrafficClass.RT_CONNECTION)
            effective_u = 0.75 / (1 - loss_p)
            rows.append((loss_p, effective_u, rt.deadline_miss_ratio))
        return rows

    rows = run_once(sweep)
    print_table(
        "S10b: loss eroding the U=0.75 slack (no spatial reuse)",
        ["loss p", "effective U", "RT miss ratio"],
        rows,
    )
    assert rows[0][2] == 0.0
    assert rows[-1][2] > 0.0, "40% loss must break U=0.75 without reuse"
    benchmark.extra_info["miss_at_40pct_loss"] = rows[-1][2]
