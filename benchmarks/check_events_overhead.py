"""Gate the overhead of ``--events`` streaming from one BENCH_perf.json.

Usage::

    python benchmarks/check_events_overhead.py BENCH_perf.json \
        [--tolerance 0.10] [--baseline sparse_ring_fast_forward] \
        [--events sparse_ring_fast_forward_events]

Compares the slots/sec of the events-streaming scenario against its
observability-off twin *from the same benchmark run*, so machine speed
cancels out and the ratio isolates the cost of event emission.  Exit
codes: ``0`` = overhead within tolerance (or either scenario missing --
soft-fail so partial bench runs do not break), ``1`` = events streaming
slowed the simulator by more than the tolerance, ``2`` = bad invocation.

The default pair is the sparse fast-forwarding ring: it streams slot
and fast-forward-span events yet costs only a few percent, and it
guards the core invariant that streaming sinks never disable idle
fast-forward -- a regression there slows the scenario ~40x and trips
this gate deterministically.  Both scenarios are timed interleaved
within a single benchmark test, so load drift on a shared runner hits
both sides equally.  The *worst-case* on-cost (a fully
loaded ring, ~1.5 events/slot) is recorded as ``loaded_ring_n8_events``
and bounded run-over-run by ``check_perf_regression.py``'s 30% gate
instead, because its honest overhead (~20% of a pure-Python slot loop)
sits above any tight within-run gate.

This is deliberately a separate check from ``check_perf_regression.py``:
that one compares *runs over time* (current vs committed baseline, 30%
noise tolerance); this one compares *scenarios within a run*, where the
shared-runner noise mostly cancels and a tight 10% gate is meaningful.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def overhead(results: dict, baseline: str, events: str) -> float | None:
    """Fractional slowdown of ``events`` vs ``baseline`` (None if absent).

    Prefers the best-round rate (``slots_per_s_best``) when both sides
    recorded one: a single scheduler hiccup in either scenario's rounds
    would dominate a mean-based ratio on a shared runner, while the best
    round of each side is what the machine can actually do.
    """
    if baseline not in results or events not in results:
        return None
    key = (
        "slots_per_s_best"
        if "slots_per_s_best" in results[baseline]
        and "slots_per_s_best" in results[events]
        else "slots_per_s"
    )
    base = float(results[baseline][key])
    with_events = float(results[events][key])
    if base <= 0:
        return None
    return 1.0 - with_events / base


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path)
    parser.add_argument("--tolerance", type=float, default=0.10)
    parser.add_argument("--baseline", default="sparse_ring_fast_forward")
    parser.add_argument(
        "--events", default="sparse_ring_fast_forward_events"
    )
    args = parser.parse_args(argv)

    if not args.results.exists():
        print(f"no results file at {args.results}; skipping", file=sys.stderr)
        return 0
    results = json.loads(args.results.read_text())
    slowdown = overhead(results, args.baseline, args.events)
    if slowdown is None:
        print(
            f"need both {args.baseline!r} and {args.events!r} in "
            f"{args.results}; skipping",
            file=sys.stderr,
        )
        return 0
    print(
        f"--events overhead: {slowdown:+.1%} "
        f"({args.baseline} -> {args.events}, gate {args.tolerance:.0%})"
    )
    if slowdown > args.tolerance:
        print(
            f"FAIL: event streaming costs more than {args.tolerance:.0%}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
