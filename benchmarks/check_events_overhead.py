"""Gate the overhead of ``--events`` streaming from one BENCH_perf.json.

Usage::

    python benchmarks/check_events_overhead.py BENCH_perf.json \
        [--tolerance 0.10] [--baseline NAME --events NAME]

Compares the slots/sec of each events-streaming scenario against its
observability-off twin *from the same benchmark run*, so machine speed
cancels out and the ratio isolates the cost of event emission.  Exit
codes: ``0`` = every present pair within budget (missing pairs soft-skip
so partial bench runs do not break), ``1`` = a pair exceeded its budget,
``2`` = bad invocation.

Each pair carries its **own** budget, because the honest cost of event
streaming depends on what the scenario spends its slots on:

* ``sparse_ring_fast_forward`` pair -- the ring idles and fast-forwards,
  so the only question is whether streaming sinks disable idle
  fast-forward (a regression there is a ~40x slowdown, not a few
  percent).  Budget: the ``--tolerance`` flag, default 10%.
* ``loaded_ring_n8`` pair -- every slot does real protocol work and
  emits ~1.5 events, so event construction is a genuine fraction of the
  slot loop.  Measured honestly at ~18% on the committed baseline;
  budgeted at 25% so runner noise does not flap the gate while a real
  regression (event emission suddenly dominating) still trips it.

The table below is the single source of truth; the report prints each
pair's measured overhead, its budget, and the remaining margin.

Legacy single-pair mode: passing ``--baseline``/``--events`` explicitly
checks exactly that pair against ``--tolerance``, matching the original
interface (the CI invocation ``--tolerance 0.10`` without pair flags
gets the full table sweep).

This is deliberately a separate check from ``check_perf_regression.py``:
that one compares *runs over time* (current vs committed baseline, 30%
noise tolerance); this one compares *scenarios within a run*, where the
shared-runner noise mostly cancels and tight budgets are meaningful.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Per-pair overhead budgets: (baseline scenario, events scenario,
#: budget).  A ``None`` budget means "use ``--tolerance``" (the tight
#: default gate for scenarios whose event stream should be ~free).
CASES: tuple[tuple[str, str, float | None], ...] = (
    ("sparse_ring_fast_forward", "sparse_ring_fast_forward_events", None),
    ("loaded_ring_n8", "loaded_ring_n8_events", 0.25),
)


def overhead(results: dict, baseline: str, events: str) -> float | None:
    """Fractional slowdown of ``events`` vs ``baseline`` (None if absent).

    Prefers the best-round rate (``slots_per_s_best``) when both sides
    recorded one: a single scheduler hiccup in either scenario's rounds
    would dominate a mean-based ratio on a shared runner, while the best
    round of each side is what the machine can actually do.
    """
    if baseline not in results or events not in results:
        return None
    key = (
        "slots_per_s_best"
        if "slots_per_s_best" in results[baseline]
        and "slots_per_s_best" in results[events]
        else "slots_per_s"
    )
    base = float(results[baseline][key])
    with_events = float(results[events][key])
    if base <= 0:
        return None
    return 1.0 - with_events / base


def check_pair(
    results: dict, baseline: str, events: str, budget: float
) -> bool | None:
    """Gate one pair; print its verdict.  None = pair absent (skipped)."""
    slowdown = overhead(results, baseline, events)
    if slowdown is None:
        print(
            f"  {baseline} -> {events}: missing from results; skipping",
            file=sys.stderr,
        )
        return None
    margin = budget - slowdown
    verdict = "ok" if slowdown <= budget else "FAIL"
    print(
        f"  {baseline} -> {events}: {slowdown:+.1%} overhead "
        f"(budget {budget:.0%}, margin {margin:+.1%}) {verdict}"
    )
    return slowdown <= budget


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="budget for pairs without a table entry (default 0.10)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="legacy single-pair mode: baseline scenario name",
    )
    parser.add_argument(
        "--events",
        default=None,
        help="legacy single-pair mode: events scenario name",
    )
    args = parser.parse_args(argv)

    if (args.baseline is None) != (args.events is None):
        print(
            "--baseline and --events must be given together",
            file=sys.stderr,
        )
        return 2
    if not args.results.exists():
        print(f"no results file at {args.results}; skipping", file=sys.stderr)
        return 0
    results = json.loads(args.results.read_text())

    print("--events overhead budgets:")
    if args.baseline is not None:
        verdicts = [
            check_pair(results, args.baseline, args.events, args.tolerance)
        ]
    else:
        verdicts = [
            check_pair(
                results,
                baseline,
                events,
                args.tolerance if budget is None else budget,
            )
            for baseline, events, budget in CASES
        ]
    checked = [v for v in verdicts if v is not None]
    if not checked:
        print("no event pairs present; skipping", file=sys.stderr)
        return 0
    if not all(checked):
        print(
            "FAIL: event streaming exceeded its overhead budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
