"""Experiment F6/F7 -- Figures 6 and 7: the hand-over timeline.

Figure 6's example: node 1 is master; arbitration during slot i-1
discovers node 3 has the highest priority and will clock slot i.
Figure 7's points: (1) distribution packet fully sent, clock stops one
bit time later; (2) the new master senses the stop and starts clocking;
(3) downstream nodes resume.  The bench reconstructs the example, checks
every timeline quantity at bit-time resolution, and prints the Figure 7
reference points.
"""

import pytest
from conftest import print_table

from repro.core.messages import Message
from repro.core.priorities import TrafficClass
from repro.core.protocol import CcrEdfProtocol
from repro.core.queues import NodeQueues
from repro.core.timing import NetworkTiming
from repro.phy.link import FibreRibbonLink
from repro.phy.packets import distribution_packet_length_bits
from repro.ring.topology import RingTopology


def rt_msg(node, dst, deadline):
    return Message(
        source=node,
        destinations=frozenset([dst]),
        traffic_class=TrafficClass.RT_CONNECTION,
        size_slots=1,
        created_slot=0,
        deadline_slot=deadline,
        connection_id=0,
    )


def test_f6_figure_example(run_once, benchmark):
    """Replicate Figure 6 (0-indexed: master 0, hp node 2 of a 5-ring)."""

    def reenact():
        topology = RingTopology.uniform(5, 10.0)
        protocol = CcrEdfProtocol(topology, trace_packets=True)
        queues = {i: NodeQueues(i) for i in range(5)}
        # Node 2 holds the most urgent message; node 4 something lax.
        queues[2].enqueue(rt_msg(2, 4, deadline=3))
        queues[4].enqueue(rt_msg(4, 0, deadline=500))
        plan = protocol.plan_slot(0, current_master=0, queues_by_node=queues)
        return topology, plan

    topology, plan = run_once(reenact)
    rows = [
        ("master of slot i-1", 0),
        ("hp node discovered by arbitration", plan.arbitration.hp_node),
        ("master of slot i", plan.master),
        ("hand-over distance [hops]", topology.distance(0, plan.master)),
        ("hand-over gap [ns]", plan.gap_s * 1e9),
    ]
    print_table("F6: the figure's hand-over example (0-indexed)", ["quantity", "value"], rows)
    assert plan.master == 2
    assert plan.gap_s == pytest.approx(topology.handover_delay_s(0, 2))
    # The distribution packet announces the hp node to everyone.
    assert plan.distribution_packet.hp_node == 2
    benchmark.extra_info["gap_ns"] = plan.gap_s * 1e9


def test_f7_timeline_points(run_once, benchmark):
    """The Figure 7 points at bit-time resolution for the F6 example."""

    def timeline():
        n = 5
        topology = RingTopology.uniform(n, 10.0)
        link = FibreRibbonLink()
        timing = NetworkTiming(topology=topology, link=link)
        bit = link.bit_time_s
        dist_bits = distribution_packet_length_bits(n)
        # t=0: end of the distribution packet at the old master (node 0).
        # Point 1: old master stops the clock one bit time later.
        p1 = bit
        # Point 2: the new master (node 2) has received the packet
        # (propagation 0->2) and senses the clock stop one bit later;
        # it resumes clocking with a single bit-time gap.
        prop_02 = topology.propagation_delay_s(0, 2)
        p2 = prop_02 + p1 + bit
        # Point 3: node 3 (downstream of the new master) receives the
        # distribution packet and sees the clock again one bit after it.
        prop_03 = topology.propagation_delay_s(0, 3)
        p3 = prop_03 + p1 + bit
        return [
            ("distribution packet length [bits]", dist_bits),
            ("P1: clock stops after [ns]", p1 * 1e9),
            ("P2: new master resumes at [ns]", p2 * 1e9),
            ("P3: node 3 sees clock again at [ns]", p3 * 1e9),
            ("slot gap modelled (P*L*D) [ns]", timing.handover_time_s(2) * 1e9),
        ]

    rows = run_once(timeline)
    print_table("F7: hand-over timeline reference points", ["point", "value"], rows)
    values = dict(rows)
    # The modelled Eq. (1) gap equals the propagation component of P2:
    # the bit-time bookkeeping is constant overhead either side.
    assert values["P2: new master resumes at [ns]"] > values[
        "P1: clock stops after [ns]"
    ]
    assert values["P3: node 3 sees clock again at [ns]"] > values[
        "P2: new master resumes at [ns]"
    ]
    benchmark.extra_info["points"] = len(rows)


def test_f67_gap_never_crossed_by_data(run_once, benchmark):
    """Structural consequence of the timeline: in a long traced run no
    transmission ever uses the link entering its slot's master."""

    def traced():
        import numpy as np

        from repro.sim.runner import ScenarioConfig, build_simulation
        from repro.traffic.periodic import random_connection_set

        rng = np.random.default_rng(67)
        conns = random_connection_set(rng, 8, 12, 0.8, period_range=(5, 60))
        config = ScenarioConfig(n_nodes=8, connections=tuple(conns))
        sim = build_simulation(config)
        violations = 0
        checked = 0
        for _ in range(5000):
            plan = sim._plan
            break_mask = 1 << ((plan.master - 1) % 8)
            for tx in plan.transmissions:
                checked += 1
                if tx.links & break_mask:
                    violations += 1
            sim.step()
        return checked, violations

    checked, violations = run_once(traced)
    print_table(
        "F6/F7: clock-break discipline over 5000 slots",
        ["transmissions checked", "break crossings"],
        [(checked, violations)],
    )
    assert checked > 1000
    assert violations == 0
    benchmark.extra_info["checked"] = checked
