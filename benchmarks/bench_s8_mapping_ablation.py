"""Experiment S8 -- ablation: logarithmic vs linear laxity->priority map.

Section 3 assumes a logarithmic mapping because it "gives higher
resolution of laxity, the closer to its deadline a packet gets".  The
priority field quantises EDF: two messages in the same bucket tie, and
the tie-break (node index) can favour the *later* deadline -- a
quantisation-induced inversion.  The log map keeps buckets of width 1
near the deadline where inversions hurt; a linear map over a long
horizon lumps all near-deadline messages together.

The bench counts bucket collisions among distinct deadlines and measures
deadline misses at high load under both maps.
"""

import numpy as np
from conftest import print_table

from repro.core.mapping import LinearMapping, LogarithmicMapping
from repro.core.priorities import TrafficClass
from repro.sim.runner import RunOptions, ScenarioConfig, build_simulation
from repro.traffic.periodic import random_connection_set
from repro.traffic.sweeps import scale_connections_to_utilisation


def test_s8_bucket_resolution_near_deadline(run_once, benchmark):
    """How many distinct laxities in [0, 16) share a priority level?"""

    def count():
        rows = []
        for name, mapping in (
            ("logarithmic", LogarithmicMapping()),
            ("linear h=1024", LinearMapping(horizon_slots=1024)),
            ("linear h=64", LinearMapping(horizon_slots=64)),
        ):
            near = [
                mapping.priority_for(l, TrafficClass.RT_CONNECTION)
                for l in range(16)
            ]
            distinct_near = len(set(near))
            far = [
                mapping.priority_for(l, TrafficClass.RT_CONNECTION)
                for l in range(0, 4096, 64)
            ]
            distinct_far = len(set(far))
            rows.append((name, distinct_near, distinct_far))
        return rows

    rows = run_once(count)
    print_table(
        "S8: priority levels distinguishing laxities near vs far",
        ["mapping", "distinct in laxity [0,16)", "distinct in [0,4096)"],
        rows,
    )
    by_name = {r[0]: r for r in rows}
    # Log map: 5 levels across [0,16) (buckets 1,2,4,8); the wide linear
    # map collapses everything near the deadline into one level.
    assert by_name["logarithmic"][1] >= 5
    assert by_name["linear h=1024"][1] <= 2
    benchmark.extra_info["log_near"] = by_name["logarithmic"][1]


def test_s8_miss_ratio_by_mapping(run_once, benchmark):
    """High, tight load: the mapping's quantisation decides the misses."""

    def sweep():
        rows = []
        rng = np.random.default_rng(88)
        base = random_connection_set(rng, 8, 16, 0.5, period_range=(8, 60))
        conns = scale_connections_to_utilisation(base, 0.97)
        for name, mapping in (
            ("logarithmic", LogarithmicMapping()),
            ("linear h=1024", LinearMapping(horizon_slots=1024)),
            ("linear h=64", LinearMapping(horizon_slots=64)),
        ):
            config = ScenarioConfig(
                n_nodes=8,
                connections=tuple(conns),
                spatial_reuse=False,  # isolate pure scheduling quality
                drop_late=True,
            )
            sim = build_simulation(config, RunOptions(mapping=mapping))
            report = sim.run(30_000)
            rt = report.class_stats(TrafficClass.RT_CONNECTION)
            rows.append(
                (name, rt.released, rt.deadline_missed, rt.deadline_miss_ratio)
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "S8b: misses at U=0.97 (no reuse, tight periods) by mapping",
        ["mapping", "released", "missed", "miss ratio"],
        rows,
    )
    by_name = {r[0]: r[3] for r in rows}
    # The log map must not be worse than the wide linear map.
    assert by_name["logarithmic"] <= by_name["linear h=1024"] + 1e-9
    benchmark.extra_info["miss_by_mapping"] = by_name
