"""Experiment S9 -- future-work features: clock-loss recovery and node
failure.

Section 8: "using a time out and a designated node that always will
start could solve this".  The bench measures the cost of that recovery
(slots and wall time lost per control-loss event) and the network's
behaviour across a node failure.
"""

import numpy as np
from conftest import print_table

from repro.core.connection import LogicalRealTimeConnection
from repro.core.priorities import TrafficClass
from repro.sim.faults import FaultInjector
from repro.sim.runner import RunOptions, ScenarioConfig, build_simulation


def workload(n):
    return tuple(
        LogicalRealTimeConnection(
            source=i,
            destinations=frozenset([(i + 2) % n]),
            period_slots=2 * n,
            size_slots=2,
            phase_slots=2 * i,
        )
        for i in range(n)
    )


def test_s9_control_loss_recovery_cost(run_once, benchmark):
    n = 8

    def sweep():
        rows = []
        for loss_count in (0, 5, 20):
            rng = np.random.default_rng(4)
            losses = frozenset(
                int(x) for x in rng.choice(range(100, 19_900), loss_count, replace=False)
            )
            faults = (
                FaultInjector(
                    control_loss_slots=losses, recovery_timeout_s=2e-6
                )
                if loss_count
                else None
            )
            config = ScenarioConfig(n_nodes=n, connections=workload(n))
            sim = build_simulation(config, RunOptions(faults=faults))
            report = sim.run(20_000)
            rt = report.class_stats(TrafficClass.RT_CONNECTION)
            rows.append(
                (
                    loss_count,
                    report.packets_sent,
                    rt.deadline_missed,
                    report.gap_time_s * 1e6,
                )
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "S9: control-loss recovery (timeout 2 us, designated node 0)",
        ["losses", "packets sent", "RT missed", "gap time [us]"],
        rows,
    )
    clean = rows[0]
    for losses, packets, missed, gap in rows[1:]:
        # Each loss costs about one slot of useful work and one timeout.
        assert clean[1] - packets <= 2 * losses
        assert gap >= losses * 2.0  # >= losses * timeout (us)
    # Plenty of slack (period 16 for 2 slots): recovery absorbs misses.
    assert all(r[2] == 0 for r in rows)
    benchmark.extra_info["rows"] = len(rows)


def test_s9_node_failure_isolation(run_once, benchmark):
    """A fail-stop node takes only its own traffic down; the designated
    node inherits mastership and everyone else continues unharmed."""
    n = 8

    def measure():
        fail_slot = 10_000
        faults = FaultInjector(
            node_failures={3: fail_slot}, recovery_timeout_s=2e-6
        )
        config = ScenarioConfig(n_nodes=n, connections=workload(n))
        sim = build_simulation(config, RunOptions(faults=faults))
        report = sim.run(20_000)
        rt = report.class_stats(TrafficClass.RT_CONNECTION)
        # Expected releases: all nodes for 10k slots, all but node 3 after.
        per_node_releases = 10_000 // (2 * n)
        expected = n * per_node_releases + (n - 1) * per_node_releases
        return rt, expected, report

    rt, expected, report = run_once(measure)
    print_table(
        "S9b: node 3 fails at slot 10000 (of 20000)",
        ["released", "expected", "delivered", "missed"],
        [(rt.released, expected, rt.delivered, rt.deadline_missed)],
    )
    assert abs(rt.released - expected) <= 8  # phase rounding
    assert rt.deadline_missed == 0
    # The survivors' messages all arrive (the last few may be in flight).
    assert rt.delivered >= rt.released - 4
    benchmark.extra_info["released"] = rt.released
