"""Experiment E2 -- Equation (2): t_minslot = N * t_node + t_prop.

Sweeps ring size and length; additionally cross-checks that the
collection-phase packet (its real bit length at the control channel
rate, plus per-node transit delays and ring propagation) indeed fits
within the Eq. (2) minimum slot -- the constraint the equation encodes.
"""

import pytest
from conftest import print_table

from repro.core.timing import NetworkTiming

from repro.phy.link import FibreRibbonLink
from repro.phy.packets import collection_packet_length_bits
from repro.ring.topology import RingTopology


def test_e2_min_slot_sweep(run_once, benchmark):
    def sweep():
        rows = []
        for n in (4, 8, 16, 32, 64):
            for link_m in (10.0, 100.0):
                topology = RingTopology.uniform(n, link_m)
                timing = NetworkTiming(
                    topology=topology, link=FibreRibbonLink()
                )
                from repro.phy.packets import distribution_packet_length_bits

                link = FibreRibbonLink()
                expected = (
                    link.control_transfer_time_s(1)
                    + n * timing.effective_node_delay_s
                    + topology.ring_propagation_delay_s
                    + link.control_transfer_time_s(
                        distribution_packet_length_bits(n)
                    )
                )
                assert timing.min_slot_length_s == pytest.approx(expected)
                rows.append(
                    (
                        n,
                        link_m,
                        timing.min_slot_length_s * 1e6,
                        timing.nominal_slot_length_s * 1e6,
                        timing.slot_length_s * 1e6,
                    )
                )
        return rows

    rows = run_once(sweep)
    print_table(
        "E2: t_minslot = N*t_node + t_prop (1 KiB payload)",
        ["N", "L [m]", "min slot [us]", "payload slot [us]", "operating slot [us]"],
        rows,
    )
    benchmark.extra_info["configs"] = len(rows)


def test_e2_collection_phase_fits_in_slot(run_once, benchmark):
    """The reason for Eq. (2): the collection packet must return to the
    master before the slot ends.  Verified with exact packet bit counts
    from the Figure 4 format."""

    def check():
        rows = []
        for n in (4, 8, 16, 32):
            topology = RingTopology.uniform(n, 10.0)
            link = FibreRibbonLink()
            timing = NetworkTiming(topology=topology, link=link)
            bits = collection_packet_length_bits(n)
            serialisation = link.control_transfer_time_s(bits)
            transit = n * timing.node_delay_s
            prop = topology.ring_propagation_delay_s
            collection_time = serialisation + transit + prop
            fits = collection_time <= timing.slot_length_s
            rows.append(
                (n, bits, serialisation * 1e6, (transit + prop) * 1e6,
                 collection_time * 1e6, timing.slot_length_s * 1e6, fits)
            )
        return rows

    rows = run_once(check)
    print_table(
        "E2b: collection phase vs slot length (Figure 3 overlap feasibility)",
        ["N", "pkt bits", "serialise [us]", "transit+prop [us]",
         "collection [us]", "slot [us]", "fits"],
        rows,
    )
    assert all(r[-1] for r in rows), "collection phase must fit in every slot"
    benchmark.extra_info["max_n_checked"] = rows[-1][0]
