"""Experiment T1 -- Table 1: allocation of priority levels to services.

Regenerates the paper's only table and verifies the implementation's
allocation matches it level for level, including the laxity mapping's
use of each class band.
"""

from conftest import print_table

from repro.core.mapping import LogarithmicMapping
from repro.core.priorities import (
    TrafficClass,
    class_priority_range,
    priority_to_class,
)


PAPER_TABLE_1 = [
    (0, 0, "Nothing to send"),
    (1, 1, "Non-Real Time"),
    (2, 16, "Best Effort"),
    (17, 31, "Logical real-time connection"),
]


def test_t1_priority_table(run_once, benchmark):
    def build_rows():
        rows = []
        for lo, hi, service in PAPER_TABLE_1:
            levels = f"{lo}" if lo == hi else f"{lo}-{hi}"
            measured = []
            for p in range(lo, hi + 1):
                cls = priority_to_class(p)
                measured.append("none" if cls is None else cls.name)
            assert len(set(measured)) == 1, f"band {levels} is not uniform"
            rows.append((levels, service, measured[0]))
        return rows

    rows = run_once(build_rows)
    print_table(
        "T1: Table 1 -- priority level allocation (paper vs implementation)",
        ["Levels", "Paper service", "Implementation class"],
        rows,
    )

    # Cross-check the class ranges used by the mapping machinery.
    assert class_priority_range(TrafficClass.NON_REAL_TIME) == (1, 1)
    assert class_priority_range(TrafficClass.BEST_EFFORT) == (2, 16)
    assert class_priority_range(TrafficClass.RT_CONNECTION) == (17, 31)

    # "A higher priority within the traffic class implies shorter laxity":
    # show the logarithmic mapping's bucket table for the RT band.
    mapping = LogarithmicMapping()
    bucket_rows = []
    for p in range(31, 16, -1):
        lo_b, hi_b = mapping.bucket_bounds(p, TrafficClass.RT_CONNECTION)
        bucket_rows.append((p, lo_b, "inf" if hi_b is None else hi_b))
    print_table(
        "T1b: logarithmic laxity -> RT priority buckets (slots)",
        ["Priority", "Laxity from", "Laxity to"],
        bucket_rows,
    )
    benchmark.extra_info["bands_verified"] = len(PAPER_TABLE_1)
