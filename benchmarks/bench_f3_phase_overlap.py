"""Experiment F3 -- Figure 3: collection/distribution phases overlap data.

"Notice that the network arbitration information, for data in slot N+1,
is sent in the previous slot, slot N."  The bench traces a run and shows,
for a window of slots, which message was *arbitrated* during each slot
and which was *transmitted* -- verifying the one-slot pipeline lag and
that the control phases never steal data-channel time.
"""

from conftest import print_table

from repro.core.connection import LogicalRealTimeConnection
from repro.sim.runner import RunOptions, ScenarioConfig, build_simulation
from repro.sim.trace import SlotTrace


def test_f3_pipeline_lag(run_once, benchmark):
    def traced_run():
        conn = LogicalRealTimeConnection(
            source=0, destinations=frozenset([3]), period_slots=4, size_slots=1
        )
        config = ScenarioConfig(n_nodes=8, connections=(conn,))
        trace = SlotTrace(verify_wire=True)
        sim = build_simulation(config, RunOptions(trace=trace))
        sim.protocol.trace_packets = True
        sim.run(16)
        return trace

    trace = run_once(traced_run)
    rows = []
    for rec in trace.records[:12]:
        rows.append(
            (
                rec.slot,
                rec.n_requests,  # requests gathered *during* this slot
                len(rec.transmitted),  # data moved *in* this slot
                rec.master,
                rec.next_master,
            )
        )
    print_table(
        "F3: per-slot phase overlap (period-4 connection from node 0)",
        ["slot", "requests collected", "packets transmitted",
         "master", "next master"],
        rows,
    )
    # Releases at slots 0, 4, 8: the request is collected in the release
    # slot, the packet moves one slot later.
    by_slot = {r[0]: r for r in rows}
    for release in (0, 4, 8):
        assert by_slot[release][1] == 1, "request collected at release slot"
        assert by_slot[release + 1][2] == 1, "data moves in the next slot"
        assert by_slot[release][2] == 0 or release > 0
    benchmark.extra_info["slots_traced"] = len(trace)


def test_f3_control_never_blocks_data(run_once, benchmark):
    """Back-to-back data slots while arbitration runs continuously: the
    overlapped control channel costs zero data slots."""

    def saturated():
        conn = LogicalRealTimeConnection(
            source=0, destinations=frozenset([4]), period_slots=2, size_slots=1
        )
        config = ScenarioConfig(n_nodes=8, connections=(conn,))
        sim = build_simulation(config)
        report = sim.run(10_000)
        return report

    report = run_once(saturated)
    print_table(
        "F3b: saturated single sender -- data slots used vs available",
        ["slots", "busy slots", "packets"],
        [(report.slots_simulated, report.busy_slots, report.packets_sent)],
    )
    # Every other slot carries a packet (period 2, steady state), i.e.
    # arbitration overhead costs no data capacity at all.
    assert report.packets_sent >= 4998
    benchmark.extra_info["packets"] = report.packets_sent
