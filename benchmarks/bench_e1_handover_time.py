"""Experiment E1 -- Equation (1): t_handover = P * L * D.

Sweeps hand-over distance, link length, and ring size; checks the
analytical formula against gaps *measured* in simulation by forcing
hand-overs of known distance.
"""

import pytest
from conftest import print_table

from repro.core.messages import Message
from repro.core.priorities import TrafficClass
from repro.core.protocol import CcrEdfProtocol
from repro.core.timing import NetworkTiming
from repro.phy.constants import FIBRE_PROPAGATION_DELAY_S_PER_M
from repro.phy.link import FibreRibbonLink
from repro.ring.topology import RingTopology
from repro.sim.engine import Simulation
from repro.traffic.base import TrafficSource


class _ForcedHandover(TrafficSource):
    """One sender per slot, chosen to realise a fixed hand-over distance."""

    def __init__(self, node, n_nodes, distance):
        self.node = node
        self.n_nodes = n_nodes
        self.distance = distance

    def messages_for_slot(self, slot):
        # Senders rotate by `distance` nodes per slot.
        if (slot * self.distance) % self.n_nodes != self.node:
            return []
        return [
            Message(
                source=self.node,
                destinations=frozenset([(self.node + 1) % self.n_nodes]),
                traffic_class=TrafficClass.BEST_EFFORT,
                size_slots=1,
                created_slot=slot,
                deadline_slot=slot + 2,
            )
        ]


def measured_gap_for_distance(n, link_m, distance, n_slots=200):
    topology = RingTopology.uniform(n, link_m)
    timing = NetworkTiming(topology=topology, link=FibreRibbonLink())
    sim = Simulation(
        timing,
        CcrEdfProtocol(topology),
        sources=[_ForcedHandover(i, n, distance) for i in range(n)],
    )
    gaps = [sim.step().gap_s for _ in range(n_slots)]
    steady = [g for g in gaps[10:] if g > 0]
    return max(set(steady), key=steady.count) if steady else 0.0


def test_e1_handover_vs_distance(run_once, benchmark):
    n, link_m = 8, 10.0
    p = FIBRE_PROPAGATION_DELAY_S_PER_M

    def sweep():
        rows = []
        for d in range(1, n):
            analytical = p * link_m * d
            measured = measured_gap_for_distance(n, link_m, d)
            rows.append((d, analytical * 1e9, measured * 1e9,
                         measured / analytical))
        return rows

    rows = run_once(sweep)
    print_table(
        "E1: t_handover = P*L*D (N=8, L=10 m), analytical vs simulated",
        ["D (hops)", "Eq.(1) [ns]", "measured [ns]", "ratio"],
        rows,
    )
    for _, analytical, measured, ratio in rows:
        assert ratio == pytest.approx(1.0, rel=1e-9)
    benchmark.extra_info["worst_case_ns"] = rows[-1][1]


def test_e1_worst_case_scaling(run_once, benchmark):
    """Worst case D = N-1 across ring sizes and link lengths."""

    def sweep():
        rows = []
        for n in (4, 8, 16, 32, 64):
            for link_m in (1.0, 10.0, 100.0):
                timing = NetworkTiming(
                    topology=RingTopology.uniform(n, link_m),
                    link=FibreRibbonLink(),
                )
                expected = (
                    FIBRE_PROPAGATION_DELAY_S_PER_M * link_m * (n - 1)
                )
                assert timing.max_handover_time_s == pytest.approx(expected)
                rows.append((n, link_m, timing.max_handover_time_s * 1e9))
        return rows

    rows = run_once(sweep)
    print_table(
        "E1b: worst-case hand-over t = P*L*(N-1)",
        ["N", "L [m]", "t_handover_max [ns]"],
        rows,
    )
    benchmark.extra_info["configs"] = len(rows)
