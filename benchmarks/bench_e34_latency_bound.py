"""Experiment E3/E4 -- Equations (3)/(4): worst-case latency.

Measures access latency of the highest-priority message under
adversarial arrival phasing and background load, against the analytical
bound t_latency = 2*t_slot + t_handover_max, and reports t_maxdelay for
a range of user deadlines.
"""

import numpy as np
from conftest import print_table

from repro.core.messages import Message
from repro.core.priorities import TrafficClass
from repro.core.protocol import CcrEdfProtocol
from repro.core.timing import NetworkTiming
from repro.phy.link import FibreRibbonLink
from repro.ring.topology import RingTopology
from repro.sim.engine import Simulation
from repro.traffic.base import TrafficSource
from repro.traffic.periodic import ConnectionSource
from repro.core.connection import LogicalRealTimeConnection


class _Probe(TrafficSource):
    """Injects one urgent RT-class probe message at a chosen slot."""

    def __init__(self, node, dst, slot):
        self.node = node
        self.dst = dst
        self.slot = slot
        self.message = None

    def messages_for_slot(self, slot):
        if slot != self.slot:
            return []
        self.message = Message(
            source=self.node,
            destinations=frozenset([self.dst]),
            traffic_class=TrafficClass.RT_CONNECTION,
            size_slots=1,
            created_slot=slot,
            deadline_slot=slot,  # laxity 0: globally most urgent
            connection_id=0,
        )
        return [self.message]


def background(n):
    """Moderate background RT load on every node (longer deadlines)."""
    return [
        ConnectionSource(
            LogicalRealTimeConnection(
                source=i,
                destinations=frozenset([(i + 3) % n]),
                period_slots=6,
                size_slots=1,
                phase_slots=i % 6,
            )
        )
        for i in range(n)
    ]


def test_e4_hp_access_latency_bounded(run_once, benchmark):
    n = 8

    def sweep():
        rows = []
        rng = np.random.default_rng(0)
        worst = 0
        for trial in range(30):
            release = int(rng.integers(5, 50))
            src = int(rng.integers(n))
            dst = int((src + 1 + rng.integers(n - 1)) % n)
            if dst == src:
                dst = (src + 1) % n
            probe = _Probe(src, dst, release)
            topology = RingTopology.uniform(n, 10.0)
            timing = NetworkTiming(topology=topology, link=FibreRibbonLink())
            sim = Simulation(
                timing,
                CcrEdfProtocol(topology),
                sources=[probe] + background(n),
            )
            for _ in range(release + 5):
                sim.step()
            assert probe.message is not None
            assert probe.message.completed_slot is not None
            latency = probe.message.completed_slot - probe.message.created_slot
            worst = max(worst, latency)
        rows.append(("hp access latency (slots), 30 adversarial trials", worst, 2))
        return rows, worst

    rows, worst = run_once(sweep)
    print_table(
        "E4: most-urgent message access latency vs the 2-slot bound",
        ["quantity", "measured worst", "Eq.(4) slot bound"],
        rows,
    )
    assert worst <= 2
    benchmark.extra_info["worst_slots"] = worst


def test_e34_wall_clock_bounds_table(run_once, benchmark):
    def table():
        rows = []
        for n in (4, 8, 16):
            for link_m in (10.0, 100.0):
                timing = NetworkTiming(
                    topology=RingTopology.uniform(n, link_m),
                    link=FibreRibbonLink(),
                )
                t_lat = timing.worst_case_latency_s
                rows.append(
                    (
                        n,
                        link_m,
                        timing.slot_length_s * 1e6,
                        timing.max_handover_time_s * 1e9,
                        t_lat * 1e6,
                        timing.max_delay_s(1e-3) * 1e6,
                    )
                )
        return rows

    rows = run_once(table)
    print_table(
        "E3/E4: t_latency = 2*t_slot + t_handover_max; "
        "t_maxdelay = t_deadline + t_latency (deadline = 1 ms)",
        ["N", "L [m]", "t_slot [us]", "t_ho_max [ns]",
         "t_latency [us]", "t_maxdelay [us]"],
        rows,
    )
    benchmark.extra_info["configs"] = len(rows)


def test_e34_wcrt_per_connection(run_once, benchmark):
    """Per-connection worst-case response times (exact EDF analysis) vs
    the latencies a synchronous-release simulation actually produces --
    the fine-grained complement to the Eq. (4) system-level bound."""
    from repro.analysis.response_time import edf_worst_case_response_slots
    from repro.sim.runner import ScenarioConfig, run_scenario

    def measure():
        conns = [
            LogicalRealTimeConnection(
                source=i,
                destinations=frozenset([(i + 3) % 8]),
                period_slots=p,
                size_slots=e,
            )
            for i, (p, e) in enumerate([(6, 1), (8, 2), (12, 3), (24, 4)])
        ]
        config = ScenarioConfig(
            n_nodes=8, connections=tuple(conns), spatial_reuse=False
        )
        report = run_scenario(config, n_slots=20_000)
        rows = []
        for c in conns:
            wcrt = edf_worst_case_response_slots(conns, c.connection_id)
            observed = report.connection_stats(c.connection_id)
            rows.append(
                (
                    f"{c.period_slots}:{c.size_slots}",
                    c.size_slots + 1,
                    wcrt,
                    max(observed.latencies_slots),
                    c.period_slots + 1,
                    observed.deadline_missed,
                )
            )
        return rows

    rows = run_once(measure)
    print_table(
        "E3/E4b: per-connection response times (U=0.79, synchronous)",
        ["P:e", "best case", "WCRT (exact)", "measured max",
         "deadline window", "missed"],
        rows,
    )
    for _, best, wcrt, measured, window, missed in rows:
        assert missed == 0
        assert best <= wcrt <= window
        # Quantised protocol EDF may exceed ideal WCRT by a bucket, but
        # never the window; typically it sits at or below the WCRT.
        assert measured <= window
    benchmark.extra_info["connections"] = len(rows)
