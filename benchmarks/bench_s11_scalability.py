"""Experiment S11 -- scalability with ring size.

The paper targets "LANs and SANs where the number of nodes and network
length is relatively small ... since the propagation delay adversely
affects the medium access protocol".  This bench quantifies how each
figure of merit scales with N, with replicated runs (mean over seeds)
for the stochastic quantities:

* the guaranteed bound U_max and the control-packet overhead (quadratic
  collection packet!) that ultimately caps N;
* achieved utilisation and reuse on a uniform random workload;
* the access-latency gap between CCR-EDF and the rotation protocols
  (constant vs linear in N).
"""

from conftest import print_table

from repro.analysis.bounds import (
    ccr_edf_access_bound_slots,
    tdma_access_bound_slots,
)
from repro.phy.packets import collection_packet_length_bits
from repro.sim.runner import ScenarioConfig, make_timing


def test_s11_analytical_scaling(run_once, benchmark):
    def table():
        rows = []
        for n in (4, 8, 16, 32, 64):
            config = ScenarioConfig(n_nodes=n)
            timing = make_timing(config)
            coll_bits = collection_packet_length_bits(n)
            slot_bits = int(timing.slot_length_s * timing.link.clock_rate_hz)
            rows.append(
                (
                    n,
                    timing.u_max,
                    timing.slot_length_s * 1e6,
                    coll_bits,
                    coll_bits / slot_bits,
                    ccr_edf_access_bound_slots(),
                    tdma_access_bound_slots(n),
                )
            )
        return rows

    rows = run_once(table)
    print_table(
        "S11: analytical scaling with ring size (10 m links, 1 KiB slots)",
        ["N", "U_max", "slot [us]", "collection bits",
         "control/slot", "EDF access bound", "TDMA access bound"],
        rows,
    )
    # The quadratic collection packet stretches the slot at large N
    # (Eq. 2 floor), visible as slot growth from N = 32 up.
    assert rows[-1][2] > rows[0][2]
    # CCR-EDF's slot-domain access bound is N-independent.
    assert all(r[5] == 2 for r in rows)
    assert rows[-1][6] == 65
    benchmark.extra_info["n_range"] = [r[0] for r in rows]


def test_s11_measured_scaling(run_once, benchmark, bench_jobs, tmp_path):
    """Measured scaling as a campaign: an ``n_nodes`` axis with
    replicated random workloads, sharded and aggregated through the
    campaign report's per-axis marginals."""
    from repro.campaign import (
        Campaign,
        CampaignReport,
        ResultStore,
        WorkloadSpec,
        run_campaign,
    )

    ns = (4, 8, 16)
    campaign = Campaign(
        name="s11-scaling",
        base=ScenarioConfig(n_nodes=4),
        n_slots=8000,
        axes={"n_nodes": ns},
        workload=WorkloadSpec(
            n_connections=16, utilisation=0.8, period_min=10, period_max=100
        ),
        n_replications=5,
        master_seed=11,
    )
    store = ResultStore(tmp_path / "store")

    def sweep():
        run_campaign(campaign, store, n_jobs=bench_jobs)
        return CampaignReport.from_store(campaign, store)

    report = run_once(sweep)
    assert report.complete
    miss = report.marginals("rt_miss_ratio")["n_nodes"]
    latency = report.marginals("rt_mean_latency_slots")["n_nodes"]
    reuse = report.marginals("spatial_reuse_factor")["n_nodes"]
    util = report.marginals("utilisation")["n_nodes"]
    rows = [(n, miss[n], latency[n], reuse[n], util[n]) for n in ns]
    print_table(
        "S11b: measured scaling, U=0.8 random workload "
        "(campaign marginals over 5 seeds)",
        ["N", "miss ratio", "mean latency", "reuse", "utilisation"],
        rows,
    )
    for n in ns:
        assert miss[n] == 0.0, f"N={n}: feasible load must not miss"
        assert util[n] > 0.9
    # Reuse grows with ring size (more disjoint segments available).
    assert reuse[ns[-1]] > reuse[ns[0]]
    benchmark.extra_info["reuse_by_n"] = [reuse[n] for n in ns]
