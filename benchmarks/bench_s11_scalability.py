"""Experiment S11 -- scalability with ring size.

The paper targets "LANs and SANs where the number of nodes and network
length is relatively small ... since the propagation delay adversely
affects the medium access protocol".  This bench quantifies how each
figure of merit scales with N, with replicated runs (mean over seeds)
for the stochastic quantities:

* the guaranteed bound U_max and the control-packet overhead (quadratic
  collection packet!) that ultimately caps N;
* achieved utilisation and reuse on a uniform random workload;
* the access-latency gap between CCR-EDF and the rotation protocols
  (constant vs linear in N).
"""

from functools import partial

import numpy as np
from conftest import print_table

from repro.analysis.bounds import (
    ccr_edf_access_bound_slots,
    tdma_access_bound_slots,
)
from repro.core.priorities import TrafficClass
from repro.phy.packets import collection_packet_length_bits
from repro.sim.batch import replicate
from repro.sim.runner import ScenarioConfig, build_simulation, make_timing
from repro.traffic.periodic import random_connection_set
from repro.traffic.sweeps import scale_connections_to_utilisation


def test_s11_analytical_scaling(run_once, benchmark):
    def table():
        rows = []
        for n in (4, 8, 16, 32, 64):
            config = ScenarioConfig(n_nodes=n)
            timing = make_timing(config)
            coll_bits = collection_packet_length_bits(n)
            slot_bits = int(timing.slot_length_s * timing.link.clock_rate_hz)
            rows.append(
                (
                    n,
                    timing.u_max,
                    timing.slot_length_s * 1e6,
                    coll_bits,
                    coll_bits / slot_bits,
                    ccr_edf_access_bound_slots(),
                    tdma_access_bound_slots(n),
                )
            )
        return rows

    rows = run_once(table)
    print_table(
        "S11: analytical scaling with ring size (10 m links, 1 KiB slots)",
        ["N", "U_max", "slot [us]", "collection bits",
         "control/slot", "EDF access bound", "TDMA access bound"],
        rows,
    )
    # The quadratic collection packet stretches the slot at large N
    # (Eq. 2 floor), visible as slot growth from N = 32 up.
    assert rows[-1][2] > rows[0][2]
    # CCR-EDF's slot-domain access bound is N-independent.
    assert all(r[5] == 2 for r in rows)
    assert rows[-1][6] == 65
    benchmark.extra_info["n_range"] = [r[0] for r in rows]


def _build_scaling(n: int, rng: "np.random.Generator"):
    """Module-level builder (picklable) for the measured-scaling sweep."""
    conns = random_connection_set(rng, n, 2 * n, 0.5, period_range=(10, 100))
    conns = scale_connections_to_utilisation(conns, 0.8)
    config = ScenarioConfig(n_nodes=n, connections=tuple(conns))
    return build_simulation(config)


def test_s11_measured_scaling(run_once, benchmark, bench_jobs):
    def sweep():
        rows = []
        for n in (4, 8, 16):
            result = replicate(
                partial(_build_scaling, n),
                n_slots=8000,
                n_jobs=bench_jobs,
                metrics={
                    "miss": lambda r: r.class_stats(
                        TrafficClass.RT_CONNECTION
                    ).deadline_miss_ratio,
                    "latency": lambda r: r.class_stats(
                        TrafficClass.RT_CONNECTION
                    ).mean_latency_slots,
                    "reuse": lambda r: r.spatial_reuse_factor,
                    "util": lambda r: r.utilisation,
                },
                n_replications=5,
                master_seed=11,
            )
            rows.append(
                (
                    n,
                    result["miss"].mean,
                    result["latency"].mean,
                    result["latency"].sem,
                    result["reuse"].mean,
                    result["util"].mean,
                )
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "S11b: measured scaling, U=0.8 random workload "
        "(mean of 5 seeds; latency +/- SEM)",
        ["N", "miss ratio", "mean latency", "SEM", "reuse", "utilisation"],
        rows,
    )
    for n, miss, latency, _, reuse, util in rows:
        assert miss == 0.0, f"N={n}: feasible load must not miss"
        assert util > 0.9
    # Reuse grows with ring size (more disjoint segments available).
    reuses = [r[4] for r in rows]
    assert reuses[-1] > reuses[0]
    benchmark.extra_info["reuse_by_n"] = reuses
