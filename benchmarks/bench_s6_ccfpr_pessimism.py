"""Experiment S6 -- the pessimism of CC-FPR's worst-case bound.

Section 1 / ref. [5]: CC-FPR's worst-case schedulability bound is
"pessimistic to such a degree that the worst-case analysis is of little
use".  This bench quantifies that: the per-node guaranteed utilisation
(1/N) versus CCR-EDF's pooled U_max, the ratio between them across ring
sizes, and a simulation showing (a) loads the CC-FPR bound rejects that
CCR-EDF guarantees, and (b) that the CC-FPR bound is *tight* -- an
adversarial workload really does push a node down to ~1/N service.
"""

from conftest import print_table

from repro.analysis.pessimism import (
    ccfpr_node_feasible,
    ccfpr_worst_case_node_utilisation,
    pessimism_ratio,
)
from repro.core.connection import LogicalRealTimeConnection
from repro.core.priorities import TrafficClass
from repro.sim.runner import ScenarioConfig, make_timing, run_scenario


def test_s6_bound_comparison_table(run_once, benchmark):
    def table():
        rows = []
        for n in (4, 8, 16, 32, 64):
            timing = make_timing(ScenarioConfig(n_nodes=n))
            rows.append(
                (
                    n,
                    timing.u_max,
                    ccfpr_worst_case_node_utilisation(n),
                    pessimism_ratio(timing),
                )
            )
        return rows

    rows = run_once(table)
    print_table(
        "S6: guaranteed single-node utilisation, CCR-EDF vs CC-FPR",
        ["N", "CCR-EDF U_max", "CC-FPR 1/N", "ratio"],
        rows,
    )
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios), "pessimism must grow with N"
    assert ratios[1] > 6.0, "~7x at N=8"
    benchmark.extra_info["ratio_n8"] = ratios[1]


def test_s6_rejected_by_ccfpr_guaranteed_by_ccr_edf(run_once, benchmark):
    """A hot-node load: admitted and clean under CCR-EDF, rejected by
    the CC-FPR bound, and indeed missing deadlines under CC-FPR.

    The path 0 -> 4 covers half the ring, so CC-FPR's rotating break
    blocks it in exactly half the slots: its real capacity for this
    sender is U = 0.5, and U = 9/16 sits just past it (while remaining
    far below CCR-EDF's pooled U_max).
    """
    n = 8

    def measure():
        conn = LogicalRealTimeConnection(
            source=0, destinations=frozenset([4]), period_slots=16, size_slots=9
        )
        timing = make_timing(ScenarioConfig(n_nodes=n))
        edf_admits = timing.edf_feasible([conn])
        ccfpr_admits = ccfpr_node_feasible([conn], n)
        results = {}
        for proto in ("ccr-edf", "ccfpr"):
            config = ScenarioConfig(
                n_nodes=n, protocol=proto, connections=(conn,), drop_late=True
            )
            report = run_scenario(config, n_slots=20_000)
            results[proto] = report.class_stats(
                TrafficClass.RT_CONNECTION
            ).deadline_miss_ratio
        return edf_admits, ccfpr_admits, results

    edf_admits, ccfpr_admits, results = run_once(measure)
    print_table(
        "S6b: U=0.56 hot node (period 16, 9 slots/message)",
        ["check", "CCR-EDF", "CC-FPR"],
        [
            ("analysis admits?", edf_admits, ccfpr_admits),
            ("simulated miss ratio", results["ccr-edf"], results["ccfpr"]),
        ],
    )
    assert edf_admits and not ccfpr_admits
    assert results["ccr-edf"] == 0.0
    assert results["ccfpr"] > 0.2, "CC-FPR must actually miss here"
    benchmark.extra_info["ccfpr_miss"] = results["ccfpr"]


def test_s6_bound_tightness(run_once, benchmark):
    """Adversarial interference drives a CC-FPR node to ~its 1/N floor:
    the bound is pessimistic about typical behaviour, yet tight."""
    n = 8

    def measure():
        # The victim (node 0) wants 1 slot per 8 to its neighbour.
        victim = LogicalRealTimeConnection(
            source=0, destinations=frozenset([1]), period_slots=8, size_slots=1
        )
        # Every other node floods long paths that cross link 0.
        interferers = [
            LogicalRealTimeConnection(
                source=i,
                destinations=frozenset([(i + 7) % n]),
                period_slots=2,
                size_slots=1,
            )
            for i in range(1, n)
        ]
        config = ScenarioConfig(
            n_nodes=n,
            protocol="ccfpr",
            connections=(victim,) + tuple(interferers),
            drop_late=True,
        )
        report = run_scenario(config, n_slots=20_000)
        rt = report.class_stats(TrafficClass.RT_CONNECTION)
        return rt

    rt = run_once(measure)
    victim_demand = 1 / 8  # exactly the 1/N floor
    print_table(
        "S6c: victim at exactly 1/N demand under saturation interference",
        ["victim U", "1/N floor", "overall miss ratio"],
        [(victim_demand, 1 / 8, rt.deadline_miss_ratio)],
    )
    # At exactly the floor the victim survives (its first-booker slot
    # always arrives in time), though the interferers themselves miss.
    benchmark.extra_info["miss_ratio"] = rt.deadline_miss_ratio
