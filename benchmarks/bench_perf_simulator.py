"""Performance of the simulator itself (slots per second).

Not a paper experiment: this tracks the engine's own speed so
regressions in the hot path (request composition, the grant sweep, the
slot loop, the idle fast-forward) are caught.  Uses real pytest-benchmark
rounds, unlike the experiment benches which run once and report protocol
metrics.

Scenario construction happens in ``benchmark.pedantic`` *setup*
callables, outside the timed region -- only ``Simulation.run`` is
measured.  Each scenario's mean slots/sec lands in ``BENCH_perf.json``
(via the ``perf_record`` fixture); the committed copy at the repo root is
the baseline ``check_perf_regression.py`` compares against in CI.
"""

import numpy as np

from repro.sim.runner import ScenarioConfig, build_simulation
from repro.traffic.periodic import random_connection_set
from repro.traffic.sweeps import scale_connections_to_utilisation

SLOTS = 2000
ROUNDS = 5


def _loaded_config(n_nodes, utilisation, seed=1):
    rng = np.random.default_rng(seed)
    conns = random_connection_set(
        rng, n_nodes, 2 * n_nodes, 0.5, period_range=(10, 100)
    )
    conns = scale_connections_to_utilisation(conns, utilisation)
    return ScenarioConfig(n_nodes=n_nodes, connections=tuple(conns))


def _measure(benchmark, perf_record, name, make_sim, warmup_slots=0):
    """Benchmark ``sim.run(SLOTS)`` with construction in untimed setup."""

    def setup():
        sim = make_sim()
        if warmup_slots:
            sim.run(warmup_slots)
        return (sim,), {}

    def run(sim):
        sim.run(SLOTS)
        return sim.report

    report = benchmark.pedantic(
        run, setup=setup, rounds=ROUNDS, iterations=1, warmup_rounds=0
    )
    mean = benchmark.stats.stats.mean
    benchmark.extra_info["slots_per_s"] = SLOTS / mean
    perf_record(name, SLOTS, mean)
    return report


def test_perf_loaded_ring_n8(benchmark, perf_record):
    config = _loaded_config(8, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "loaded_ring_n8",
        lambda: build_simulation(config),
    )
    assert report.packets_sent > 0


def test_perf_loaded_ring_n8_hot_cache(benchmark, perf_record):
    """Steady state: compose/route/gap caches warmed by a full run."""
    config = _loaded_config(8, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "loaded_ring_n8_hot_cache",
        lambda: build_simulation(config),
        warmup_slots=SLOTS,
    )
    assert report.packets_sent > 0


def test_perf_loaded_ring_n32(benchmark, perf_record):
    config = _loaded_config(32, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "loaded_ring_n32",
        lambda: build_simulation(config),
    )
    assert report.packets_sent > 0


def test_perf_idle_ring_fast_forward(benchmark, perf_record):
    """The no-traffic path with idle-slot fast-forward (default on)."""
    config = ScenarioConfig(n_nodes=8)
    report = _measure(
        benchmark,
        perf_record,
        "idle_ring_fast_forward",
        lambda: build_simulation(config),
    )
    assert report.slots_simulated == SLOTS


def test_perf_idle_ring_plan_loop(benchmark, perf_record):
    """The no-traffic path stepped slot by slot: pure planning cost."""
    config = ScenarioConfig(n_nodes=8)
    report = _measure(
        benchmark,
        perf_record,
        "idle_ring_plan_loop",
        lambda: build_simulation(config, fast_forward=False),
    )
    assert report.slots_simulated == SLOTS


def test_perf_ccfpr_baseline(benchmark, perf_record):
    rng = np.random.default_rng(1)
    conns = random_connection_set(rng, 8, 16, 0.8, period_range=(10, 100))
    config = ScenarioConfig(
        n_nodes=8, protocol="ccfpr", connections=tuple(conns)
    )
    report = _measure(
        benchmark,
        perf_record,
        "ccfpr_baseline",
        lambda: build_simulation(config),
    )
    assert report.packets_sent > 0
