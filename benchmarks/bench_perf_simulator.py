"""Performance of the simulator itself (slots per second).

Not a paper experiment: this tracks the engine's own speed so
regressions in the hot path (request composition, the grant sweep, the
slot loop) are caught.  Uses real pytest-benchmark rounds, unlike the
experiment benches which run once and report protocol metrics.
"""

import numpy as np

from repro.sim.runner import ScenarioConfig, build_simulation
from repro.traffic.periodic import random_connection_set
from repro.traffic.sweeps import scale_connections_to_utilisation

SLOTS = 2000


def _sim(n_nodes, utilisation, seed=1):
    rng = np.random.default_rng(seed)
    conns = random_connection_set(
        rng, n_nodes, 2 * n_nodes, 0.5, period_range=(10, 100)
    )
    conns = scale_connections_to_utilisation(conns, utilisation)
    return build_simulation(
        ScenarioConfig(n_nodes=n_nodes, connections=tuple(conns))
    )


def test_perf_loaded_ring_n8(benchmark):
    def run():
        sim = _sim(8, 0.8)
        sim.run(SLOTS)
        return sim.report.packets_sent

    packets = benchmark(run)
    assert packets > 0
    benchmark.extra_info["slots_per_round"] = SLOTS


def test_perf_loaded_ring_n32(benchmark):
    def run():
        sim = _sim(32, 0.8)
        sim.run(SLOTS)
        return sim.report.packets_sent

    packets = benchmark(run)
    assert packets > 0
    benchmark.extra_info["slots_per_round"] = SLOTS


def test_perf_idle_ring(benchmark):
    """The no-traffic fast path: planning cost with empty queues."""

    def run():
        sim = build_simulation(ScenarioConfig(n_nodes=8))
        sim.run(SLOTS)
        return sim.report.slots_simulated

    slots = benchmark(run)
    assert slots == SLOTS


def test_perf_ccfpr_baseline(benchmark):
    def run():
        rng = np.random.default_rng(1)
        conns = random_connection_set(rng, 8, 16, 0.8, period_range=(10, 100))
        sim = build_simulation(
            ScenarioConfig(n_nodes=8, protocol="ccfpr", connections=tuple(conns))
        )
        sim.run(SLOTS)
        return sim.report.packets_sent

    packets = benchmark(run)
    assert packets > 0
