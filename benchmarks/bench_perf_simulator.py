"""Performance of the simulator itself (slots per second).

Not a paper experiment: this tracks the engine's own speed so
regressions in the hot path (request composition, the grant sweep, the
slot loop, the idle fast-forward) are caught.  Uses real pytest-benchmark
rounds, unlike the experiment benches which run once and report protocol
metrics.

Scenario construction happens in ``benchmark.pedantic`` *setup*
callables, outside the timed region -- only ``Simulation.run`` is
measured.  Each scenario's mean slots/sec lands in ``BENCH_perf.json``
(via the ``perf_record`` fixture); the committed copy at the repo root is
the baseline ``check_perf_regression.py`` compares against in CI.
"""

import numpy as np

from repro.sim.runner import RunOptions, ScenarioConfig, build_simulation
from repro.traffic.periodic import random_connection_set
from repro.traffic.sweeps import scale_connections_to_utilisation

SLOTS = 2000
ROUNDS = 5


def _loaded_config(n_nodes, utilisation, seed=1):
    rng = np.random.default_rng(seed)
    conns = random_connection_set(
        rng, n_nodes, 2 * n_nodes, 0.5, period_range=(10, 100)
    )
    conns = scale_connections_to_utilisation(conns, utilisation)
    return ScenarioConfig(n_nodes=n_nodes, connections=tuple(conns))


def _measure(
    benchmark,
    perf_record,
    name,
    make_sim,
    warmup_slots=0,
    rounds=ROUNDS,
    slots=SLOTS,
):
    """Benchmark ``sim.run(slots)`` with construction in untimed setup."""

    def setup():
        sim = make_sim()
        if warmup_slots:
            sim.run(warmup_slots)
        return (sim,), {}

    def run(sim):
        sim.run(slots)
        return sim.report

    report = benchmark.pedantic(
        run, setup=setup, rounds=rounds, iterations=1, warmup_rounds=0
    )
    stats = benchmark.stats.stats
    benchmark.extra_info["slots_per_s"] = slots / stats.mean
    perf_record(name, slots, stats.mean, min_seconds=stats.min)
    return report


def test_perf_loaded_ring_n8(benchmark, perf_record):
    config = _loaded_config(8, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "loaded_ring_n8",
        lambda: build_simulation(config),
    )
    assert report.packets_sent > 0


def _events_sim(config, tmp_path, counter=iter(range(100_000))):
    from repro.obs.events import EventDispatcher, JsonlEventLog

    observer = EventDispatcher()
    observer.add_sink(
        JsonlEventLog(tmp_path / f"events-{next(counter)}.jsonl")
    )
    return build_simulation(config, RunOptions(observer=observer))


def test_perf_loaded_ring_n8_events(benchmark, perf_record, tmp_path):
    """Worst case for ``--events``: a loaded ring streams ~1.5 events
    per slot (slot + hand-over + arbitration), all lazily serialised at
    flush time.  Documents the on-cost ceiling (~20% of a pure-Python
    slot loop); regressions are caught by the ordinary 30% gate against
    the committed baseline, like every other scenario here.
    """
    config = _loaded_config(8, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "loaded_ring_n8_events",
        lambda: _events_sim(config, tmp_path),
    )
    assert report.packets_sent > 0


def _sparse_config():
    from repro.core.connection import LogicalRealTimeConnection

    # One message every 1000 slots: almost all wall time is idle
    # fast-forward, so the events side's per-active-slot cost is noise
    # and the only thing that can trip the overhead gate is losing
    # fast-forward itself (a ~40x blowup).
    return ScenarioConfig(
        n_nodes=8,
        connections=(
            LogicalRealTimeConnection(
                source=0,
                destinations=frozenset({2}),
                period_slots=1000,
                size_slots=1,
                connection_id=0,
            ),
        ),
    )


def test_perf_sparse_ring_fast_forward_events_pair(
    benchmark, perf_record, tmp_path
):
    """Sparse ring with and without ``--events``: the <10% CI gate pair.

    ``check_events_overhead.py`` compares the two scenarios this test
    records (``sparse_ring_fast_forward`` and ``..._events``).  The pair
    guards the tentpole invariant that streaming sinks do NOT disable
    idle fast-forward (spans stand in for skipped slots): if a change
    ever forces slot-by-slot stepping under a sink, the events side
    slows by ~40x and the gate trips deterministically, while genuine
    streaming costs only a few percent here.

    Both sides are timed in the SAME test, interleaved round by round
    with ``time.perf_counter``, because a ratio between two benchmarks
    run minutes apart is at the mercy of shared-runner load drift --
    interleaving makes every noise burst hit both sides equally.  The
    pedantic wrapper only drives the rounds; its own timing (the pair
    combined) is not recorded.
    """
    import time

    config = _sparse_config()
    n_slots = 20 * SLOTS
    times: dict[str, list[float]] = {"base": [], "events": []}

    def run_pair():
        sim = build_simulation(config)
        t0 = time.perf_counter()
        sim.run(n_slots)
        times["base"].append(time.perf_counter() - t0)
        assert sim.fast_forward, "streaming sinks must not disable ff"
        sim = _events_sim(config, tmp_path)
        t0 = time.perf_counter()
        sim.run(n_slots)
        times["events"].append(time.perf_counter() - t0)
        assert sim.fast_forward, "streaming sinks must not disable ff"

    benchmark.pedantic(run_pair, rounds=12, iterations=1, warmup_rounds=1)
    for name, series in (
        ("sparse_ring_fast_forward", times["base"]),
        ("sparse_ring_fast_forward_events", times["events"]),
    ):
        perf_record(
            name,
            n_slots,
            sum(series) / len(series),
            min_seconds=min(series),
        )


def test_perf_campaign_executor_overhead_pair(
    benchmark, perf_record, tmp_path
):
    """Campaign executor vs raw worker batch: the <10% within-run gate.

    Both sides execute the *identical* set of seeded runs.  The raw side
    calls :func:`repro.sim.parallel.run_one` directly -- the bare
    bit-identical worker unit; the executor side drives the same runs
    through :func:`repro.campaign.run_campaign` into a fresh store, so
    the difference isolates everything the campaign layer adds on top
    (grid expansion, key fingerprinting, row flattening, atomic JSON
    persistence).  ``check_perf_regression.py --campaign-tolerance``
    fails CI when that on-cost exceeds 10%.

    Interleaved round by round with ``time.perf_counter`` for the same
    reason as the events pair above: a ratio between runs minutes apart
    is at the mercy of shared-runner load drift.
    """
    import shutil
    import time

    from repro.campaign import (
        Campaign,
        ResultStore,
        WorkloadSpec,
        expand_runs,
        run_campaign,
    )
    from repro.campaign.executor import _build_run
    from repro.sim.parallel import run_one

    campaign = Campaign(
        name="perf-pair",
        base=ScenarioConfig(n_nodes=8),
        n_slots=SLOTS,
        axes={"utilisation": (0.4, 0.8)},
        workload=WorkloadSpec(n_connections=8, period_min=10, period_max=100),
        n_replications=2,
        master_seed=3,
    )
    specs = list(expand_runs(campaign))
    total_slots = sum(spec.point.n_slots for spec in specs)
    times: dict[str, list[float]] = {"raw": [], "executor": []}

    def run_pair():
        t0 = time.perf_counter()
        for spec in specs:
            run_one(
                lambda rng, spec=spec: _build_run(spec, rng),
                np.random.SeedSequence(entropy=spec.seed_entropy),
                spec.point.n_slots,
            )
        times["raw"].append(time.perf_counter() - t0)
        store_dir = tmp_path / "store"
        shutil.rmtree(store_dir, ignore_errors=True)  # nothing cached
        t0 = time.perf_counter()
        summary = run_campaign(campaign, ResultStore(store_dir), n_jobs=1)
        times["executor"].append(time.perf_counter() - t0)
        assert summary.executed == len(specs) and summary.skipped == 0

    benchmark.pedantic(run_pair, rounds=5, iterations=1, warmup_rounds=1)
    for name, series in (
        ("campaign_raw_batch", times["raw"]),
        ("campaign_executor", times["executor"]),
    ):
        perf_record(
            name,
            total_slots,
            sum(series) / len(series),
            min_seconds=min(series),
        )


def test_perf_loaded_ring_n8_vector(benchmark, perf_record):
    """The tentpole number: the vector engine on the loaded n8 ring.

    Same scenario as ``loaded_ring_n8``; the recorded rate is what the
    ``--engine vector`` core does on it (the compiled micro-kernel when
    a C compiler is present, the numpy SoA kernel otherwise).  Runs more
    slots per round than the oracle benches so per-round kernel entry
    (ingest + exit fold) amortises the way real runs amortise it.
    ``check_perf_regression.py`` gates the within-run speedup vs the
    oracle (``--vector-min-speedup``) as well as the run-over-run rate.
    """
    config = _loaded_config(8, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "loaded_ring_n8_vector",
        lambda: build_simulation(config, RunOptions(engine="vector")),
        slots=25 * SLOTS,
    )
    assert report.packets_sent > 0


def test_perf_loaded_ring_n32_vector(benchmark, perf_record):
    """Node-count scaling check: n32 must scale sublinearly vs n8."""
    config = _loaded_config(32, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "loaded_ring_n32_vector",
        lambda: build_simulation(config, RunOptions(engine="vector")),
        slots=10 * SLOTS,
    )
    assert report.packets_sent > 0


def test_perf_vector_cold_start(benchmark, perf_record):
    """One short cold ``run()`` on the vector engine: dominated by the
    fixed kernel-entry cost (eligibility checks, state ingest, exit
    fold) rather than per-slot throughput.  Guards the overhead short
    campaign runs pay for every kernel entry."""
    config = _loaded_config(8, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "vector_cold_start",
        lambda: build_simulation(config, RunOptions(engine="vector")),
    )
    assert report.packets_sent > 0


def test_perf_loaded_ring_n8_hot_cache(benchmark, perf_record):
    """Steady state: compose/route/gap caches warmed by a full run."""
    config = _loaded_config(8, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "loaded_ring_n8_hot_cache",
        lambda: build_simulation(config),
        warmup_slots=SLOTS,
    )
    assert report.packets_sent > 0


def test_perf_loaded_ring_n32(benchmark, perf_record):
    config = _loaded_config(32, 0.8)
    report = _measure(
        benchmark,
        perf_record,
        "loaded_ring_n32",
        lambda: build_simulation(config),
    )
    assert report.packets_sent > 0


def test_perf_idle_ring_fast_forward(benchmark, perf_record):
    """The no-traffic path with idle-slot fast-forward (default on)."""
    config = ScenarioConfig(n_nodes=8)
    report = _measure(
        benchmark,
        perf_record,
        "idle_ring_fast_forward",
        lambda: build_simulation(config),
    )
    assert report.slots_simulated == SLOTS


def test_perf_idle_ring_plan_loop(benchmark, perf_record):
    """The no-traffic path stepped slot by slot: pure planning cost."""
    config = ScenarioConfig(n_nodes=8)
    report = _measure(
        benchmark,
        perf_record,
        "idle_ring_plan_loop",
        lambda: build_simulation(config, RunOptions(fast_forward=False)),
    )
    assert report.slots_simulated == SLOTS


def test_perf_ccfpr_baseline(benchmark, perf_record):
    rng = np.random.default_rng(1)
    conns = random_connection_set(rng, 8, 16, 0.8, period_range=(10, 100))
    config = ScenarioConfig(
        n_nodes=8, protocol="ccfpr", connections=tuple(conns)
    )
    report = _measure(
        benchmark,
        perf_record,
        "ccfpr_baseline",
        lambda: build_simulation(config),
    )
    assert report.packets_sent > 0
