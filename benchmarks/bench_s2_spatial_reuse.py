"""Experiment S2 -- spatial reuse: aggregate throughput > link rate.

Section 2: "Several transmissions can be performed simultaneously
through spatial bandwidth reuse, thus achieving an aggregated throughput
higher than the single-link bit rate."  Measures the reuse factor across
traffic localities (neighbour traffic reuses best; ring-crossing traffic
cannot be parallelised) and ring sizes.
"""

from conftest import print_table

from repro.core.connection import LogicalRealTimeConnection
from repro.sim.runner import ScenarioConfig, run_scenario


def saturating_workload(n_nodes, hop_distance):
    """Every node sends to the node ``hop_distance`` away every 2 slots.

    Period 2 is the densest sustainable pattern: a message released at
    ``t`` is arbitrated during ``t`` and transmitted at ``t + 1``, its
    deadline (period 1 would demand same-slot transmission, which the
    Figure 3 pipeline cannot do).  Demand is ``N/2`` packets per slot --
    far beyond the single guaranteed packet, so whatever gets through
    measures pure spatial reuse.
    """
    return [
        LogicalRealTimeConnection(
            source=i,
            destinations=frozenset([(i + hop_distance) % n_nodes]),
            period_slots=2,
            size_slots=1,
        )
        for i in range(n_nodes)
    ]


def test_s2_reuse_vs_locality(run_once, benchmark):
    n = 8

    def sweep():
        rows = []
        for hops in (1, 2, 4, 7):
            conns = saturating_workload(n, hops)
            config = ScenarioConfig(
                n_nodes=n, connections=tuple(conns), drop_late=True
            )
            report = run_scenario(config, n_slots=5000)
            rows.append(
                (
                    hops,
                    report.throughput_packets_per_slot,
                    report.spatial_reuse_factor,
                    n / hops,  # geometric ceiling
                )
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "S2: spatial reuse vs traffic locality (N=8, saturated)",
        ["hop distance", "packets/slot", "reuse factor", "ceiling N/d"],
        rows,
    )
    # Neighbour traffic achieves multi-packet slots; reuse decays with
    # distance; nothing exceeds the geometric ceiling.
    assert rows[0][2] > 3.0, "neighbour traffic must reuse heavily"
    factors = [r[2] for r in rows]
    assert factors == sorted(factors, reverse=True)
    for hops, _, factor, ceiling in rows:
        assert factor <= ceiling + 1e-9
    benchmark.extra_info["neighbour_reuse"] = rows[0][2]


def test_s2_aggregate_exceeds_link_rate(run_once, benchmark):
    """Express the claim in bit/s: aggregate carried bits per second
    exceed the single-link data rate."""
    from repro.sim.runner import make_timing

    def measure():
        rows = []
        for n in (4, 8, 16):
            conns = saturating_workload(n, 1)
            config = ScenarioConfig(
                n_nodes=n, connections=tuple(conns), drop_late=True
            )
            timing = make_timing(config)
            report = run_scenario(config, n_slots=5000)
            payload_bits = config.slot_payload_bytes * 8
            aggregate = report.throughput_packets_per_s * payload_bits
            link_rate = timing.link.data_rate_bit_per_s
            rows.append((n, aggregate / 1e9, link_rate / 1e9, aggregate / link_rate))
        return rows

    rows = run_once(measure)
    print_table(
        "S2b: aggregate throughput vs single-link rate (neighbour traffic)",
        ["N", "aggregate [Gbit/s]", "link rate [Gbit/s]", "speedup"],
        rows,
    )
    for n, _, _, speedup in rows:
        # N=4 is demand-limited (N/2 = 2 packets/slot offered); larger
        # rings clear 3x and beyond.
        assert speedup > 1.2, f"N={n}: reuse must beat the link rate"
    # Speedup grows with ring size for neighbour traffic.
    speedups = [r[3] for r in rows]
    assert speedups == sorted(speedups)
    benchmark.extra_info["max_speedup"] = speedups[-1]
