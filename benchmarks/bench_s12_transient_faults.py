"""Experiment S12 -- survivability under stochastic transient faults.

Extends S9's scripted fail-stop study with the stochastic fault layer:
nodes crash with exponential time-to-failure, repair with exponential
time-to-repair, and rejoin with empty queues; the control channel loses
packets in Gilbert-Elliott bursts.  The experiment sweeps the transient
node-fault rate against deadline-miss ratio and availability for CCR-EDF
vs CC-FPR, and verifies that a node rejoin restores the steady-state
miss ratio (every miss is attributable to a fault window).
"""

import numpy as np
from conftest import print_table

from repro.core.connection import LogicalRealTimeConnection
from repro.core.priorities import TrafficClass
from repro.sim.fault_models import (
    RecoveryPolicy,
    ScriptedNodeOutages,
    TransientNodeFaults,
)
from repro.sim.runner import RunOptions, ScenarioConfig, build_simulation

N = 8
HORIZON = 20_000
TIMEOUT = RecoveryPolicy(timeout_s=2e-6)


def workload(n):
    """One admitted LRTC per node, total utilisation 0.5."""
    return tuple(
        LogicalRealTimeConnection(
            source=i,
            destinations=frozenset([(i + 2) % n]),
            period_slots=2 * n,
            size_slots=1,
            phase_slots=2 * i,
        )
        for i in range(n)
    )


def test_s12_fault_rate_sweep(run_once, benchmark):
    """Availability degrades monotonically with the transient-fault rate;
    at rate zero the admitted traffic is miss-free under CCR-EDF."""

    def sweep():
        rows = []
        for protocol in ("ccr-edf", "ccfpr"):
            for mttf in (None, 4000, 1000, 250):
                faults = None
                if mttf is not None:
                    faults = TransientNodeFaults(
                        np.random.default_rng(7),
                        n_nodes=N,
                        mttf_slots=mttf,
                        mttr_slots=150,
                        immortal={0},
                        recovery=TIMEOUT,
                    )
                config = ScenarioConfig(
                    n_nodes=N, protocol=protocol, connections=workload(N)
                )
                sim = build_simulation(config, RunOptions(faults=faults))
                report = sim.run(HORIZON)
                rt = report.class_stats(TrafficClass.RT_CONNECTION)
                a = report.availability_stats
                rows.append(
                    (
                        protocol,
                        0.0 if mttf is None else 1.0 / mttf,
                        rt.deadline_miss_ratio,
                        rt.deadline_missed,
                        rt.deadline_missed_in_fault_window,
                        report.availability,
                        a.recoveries,
                        a.node_downtime_slots,
                    )
                )
        return rows

    rows = run_once(sweep)
    print_table(
        "S12: transient node faults (MTTR 150 slots, timeout 2 us)",
        ["protocol", "fault rate", "miss ratio", "missed", "missed@fault",
         "availability", "recoveries", "downtime"],
        rows,
    )
    by_protocol = {
        p: [r for r in rows if r[0] == p] for p in ("ccr-edf", "ccfpr")
    }
    # Fault rate 0: the admitted set is schedulable -> CCR-EDF miss-free.
    assert by_protocol["ccr-edf"][0][3] == 0
    for protocol, series in by_protocol.items():
        # Availability is 1.0 clean and degrades monotonically with rate.
        avails = [r[5] for r in series]
        assert avails[0] == 1.0
        assert all(a >= b for a, b in zip(avails, avails[1:])), avails
        # Every miss the faults caused is attributed to a fault window.
        for r in series:
            assert r[4] <= r[3]
    benchmark.extra_info["rows"] = len(rows)


def test_s12_rejoin_restores_steady_state(run_once, benchmark):
    """A transient outage suspends the node's connections (utilisation
    reclaimed), its stale queue is purged on rejoin, and after recovery
    the miss ratio returns to the clean steady state."""
    down, up = 5_000, 8_000

    def measure():
        faults = ScriptedNodeOutages({3: [(down, up)]}, recovery=TIMEOUT)
        config = ScenarioConfig(n_nodes=N, connections=workload(N))
        sim = build_simulation(config, RunOptions(faults=faults, with_admission=True))
        u_before = sim.admission.utilisation
        u_during = u_after = None
        missed_at_resync = 0
        rt = sim.report.class_stats(TrafficClass.RT_CONNECTION)
        for _ in range(HORIZON):
            sim.step()
            if sim.current_slot == down + 1:
                u_during = sim.admission.utilisation
            elif sim.current_slot == up + 1:
                u_after = sim.admission.utilisation
            elif sim.current_slot == up + 200:
                # Steady state again: miss count frozen from here on.
                missed_at_resync = rt.deadline_missed
        return sim, u_before, u_during, u_after, missed_at_resync

    sim, u_before, u_during, u_after, missed_at_resync = run_once(measure)
    report = sim.report
    rt = report.class_stats(TrafficClass.RT_CONNECTION)
    a = report.availability_stats
    print_table(
        f"S12b: node 3 down [{down}, {up}) of {HORIZON}",
        ["released", "missed", "missed@fault", "rejoin", "U before",
         "U during", "U after"],
        [(rt.released, rt.deadline_missed, rt.deadline_missed_in_fault_window,
          a.node_rejoins, u_before, u_during, u_after)],
    )
    # The outage suspends node 3's connection and rejoin re-admits it.
    assert a.node_failures == 1 and a.node_rejoins == 1
    assert u_during < u_before
    assert u_after == u_before
    # Node 3 resumes releasing after rejoin (more than the dead-forever
    # count of a permanent S9-style failure).
    permanent = (N - 1) * (HORIZON // (2 * N)) + down // (2 * N)
    assert rt.released > permanent
    # Whatever missed is attributable to the outage, and the miss count
    # is steady again shortly after rejoin: the tail is miss-free.
    assert rt.deadline_missed == rt.deadline_missed_in_fault_window
    assert rt.deadline_missed == missed_at_resync
    benchmark.extra_info["missed"] = rt.deadline_missed
