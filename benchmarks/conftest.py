"""Shared helpers for the experiment benchmarks.

Each ``bench_*`` module regenerates one experiment from DESIGN.md's
per-experiment index (Tables/Figures/claims of the paper plus the
simulation study its Section 8 promises).  Conventions:

* every benchmark prints the table or series the experiment reports,
  via :func:`print_table`, so ``pytest benchmarks/ --benchmark-only -s``
  reproduces the numbers;
* headline quantities are attached to ``benchmark.extra_info`` so the
  JSON output of pytest-benchmark carries them;
* simulations run once per benchmark (``benchmark.pedantic`` with a
  single round) -- the interesting output is the measured metric, the
  wall-clock timing is a bonus.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from pathlib import Path

import pytest

#: Where the perf-bench recorder writes its scenario table; the committed
#: copy at the repo root is the regression baseline CI compares against.
BENCH_PERF_JSON = Path(__file__).resolve().parent.parent / "BENCH_perf.json"

_perf_results: dict[str, dict[str, float]] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--bench-jobs",
        type=int,
        default=1,
        help="worker processes for replicated benches (0 = one per CPU); "
        "results are bit-identical to --bench-jobs=1",
    )


@pytest.fixture(scope="session")
def bench_jobs(request) -> int:
    """Job count for benches that replicate across seeds."""
    return request.config.getoption("--bench-jobs")


@pytest.fixture(scope="session")
def perf_record():
    """Collect slots/sec per perf scenario; writes BENCH_perf.json.

    The file is only (re)written when at least one perf scenario ran, so
    experiment-only bench invocations never clobber the baseline.
    """

    def record(
        name: str,
        slots: int,
        mean_seconds: float,
        min_seconds: float | None = None,
    ) -> None:
        _perf_results[name] = {
            "slots": slots,
            "seconds_per_round": mean_seconds,
            "slots_per_s": slots / mean_seconds,
        }
        if min_seconds is not None:
            # Best-round rate: the noise-robust estimator used for
            # *within-run* comparisons (check_events_overhead.py), where
            # one slow outlier round would otherwise dominate the ratio.
            _perf_results[name]["slots_per_s_best"] = slots / min_seconds

    yield record
    if _perf_results:
        BENCH_PERF_JSON.write_text(
            json.dumps(_perf_results, indent=2, sort_keys=True) + "\n"
        )


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print one experiment's result table."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1e-3 or value == 0:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument callable exactly once under the benchmark."""

    def runner(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)

    return runner
