"""Experiment S7 -- barrier synchronisation and global reduction cost.

The parallel-processing services of Sections 1/7: completion cost in
slots versus participant count, on an idle ring and under guaranteed
background load.
"""

import operator

from conftest import print_table

from repro.core.connection import LogicalRealTimeConnection
from repro.core.protocol import CcrEdfProtocol
from repro.core.timing import NetworkTiming
from repro.phy.link import FibreRibbonLink
from repro.ring.topology import RingTopology
from repro.services.api import MessageInjector
from repro.services.barrier import BarrierCoordinator
from repro.services.reduction import GlobalReduction
from repro.sim.engine import Simulation
from repro.traffic.periodic import ConnectionSource


def build(n, background_u=0.0):
    topology = RingTopology.uniform(n, 10.0)
    timing = NetworkTiming(topology=topology, link=FibreRibbonLink())
    injectors = {i: MessageInjector(i) for i in range(n)}
    sources = list(injectors.values())
    if background_u > 0:
        # Spread background_u of total utilisation evenly over the nodes:
        # each node sends 3 slots per period, period sized so that the
        # sum over n connections hits the target.
        size = 3
        period = max(size, round(n * size / background_u))
        for i in range(n):
            sources.append(
                ConnectionSource(
                    LogicalRealTimeConnection(
                        source=i,
                        destinations=frozenset([(i + 2) % n]),
                        period_slots=period,
                        size_slots=size,
                        phase_slots=(i * period) // n,
                    )
                )
            )
    sim = Simulation(timing, CcrEdfProtocol(topology), sources=sources)
    return sim, injectors


def test_s7_barrier_cost_vs_participants(run_once, benchmark):
    def sweep():
        rows = []
        for n in (4, 8, 16):
            sim, injectors = build(n)
            barrier = BarrierCoordinator(sim, injectors, coordinator=0)
            idle = barrier.execute(range(n)).slots
            sim_bg, injectors_bg = build(n, background_u=0.3)
            barrier_bg = BarrierCoordinator(sim_bg, injectors_bg, coordinator=0)
            loaded = barrier_bg.execute(range(n)).slots
            rows.append((n, idle, loaded))
        return rows

    rows = run_once(sweep)
    print_table(
        "S7: barrier completion cost [slots], idle vs 30% background",
        ["N participants", "idle ring", "loaded ring"],
        rows,
    )
    idle_costs = [r[1] for r in rows]
    assert idle_costs == sorted(idle_costs), "cost grows with N"
    for n, idle, loaded in rows:
        assert loaded >= idle
        # Gather phase reuses segments: far better than 2N serial slots.
        assert idle <= 2 * n + 6
    benchmark.extra_info["barrier_n16_idle"] = rows[-1][1]


def test_s7_reduction_cost_and_correctness(run_once, benchmark):
    def sweep():
        rows = []
        for n in (4, 8, 16):
            sim, injectors = build(n)
            service = GlobalReduction(sim, injectors)
            result = service.execute(
                {i: i * i for i in range(n)}, operator.add
            )
            expected = sum(i * i for i in range(n))
            rows.append((n, result.slots, result.value, expected))
        return rows

    rows = run_once(sweep)
    print_table(
        "S7b: pipelined ring all-reduce (sum of squares)",
        ["N participants", "slots", "value", "expected"],
        rows,
    )
    for n, slots, value, expected in rows:
        assert value == expected
        # Reduce phase is inherently serial (k-1 dependent hops) plus the
        # broadcast: about 2 slots per hop through the pipeline.
        assert slots <= 3 * n + 6
    costs = [r[1] for r in rows]
    assert costs == sorted(costs)
    benchmark.extra_info["reduce_n16_slots"] = rows[-1][1]
