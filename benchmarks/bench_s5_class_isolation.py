"""Experiment S5 -- traffic-class isolation.

Section 3: "The best effort message does not affect the logical
real-time connection message"; best-effort rides spatial reuse and
leftover slots, non-real-time rides below that.  The bench loads the
ring with guaranteed traffic and sweeps background best-effort/NRT
pressure: RT misses must stay at zero while lower classes degrade
gracefully.
"""

import numpy as np
from conftest import print_table

from repro.core.connection import LogicalRealTimeConnection
from repro.core.priorities import TrafficClass
from repro.sim.runner import RunOptions, ScenarioConfig, build_simulation
from repro.traffic.poisson import PoissonSource


def guaranteed_load(n):
    """~50% guaranteed utilisation spread over the ring."""
    return [
        LogicalRealTimeConnection(
            source=i,
            destinations=frozenset([(i + 2) % n]),
            period_slots=2 * n,
            size_slots=1,
            phase_slots=2 * i,
        )
        for i in range(n)
    ]


def test_s5_rt_unaffected_by_background(run_once, benchmark):
    n = 8

    def sweep():
        rows = []
        for be_rate in (0.0, 0.05, 0.1, 0.2, 0.4):
            rng = np.random.default_rng(5)
            config = ScenarioConfig(
                n_nodes=n, connections=tuple(guaranteed_load(n))
            )
            extra = []
            for node in range(n):
                if be_rate > 0:
                    extra.append(
                        PoissonSource(
                            node=node,
                            n_nodes=n,
                            rate_per_slot=be_rate,
                            traffic_class=TrafficClass.BEST_EFFORT,
                            rng=rng,
                            relative_deadline_slots=100,
                        )
                    )
                    extra.append(
                        PoissonSource(
                            node=node,
                            n_nodes=n,
                            rate_per_slot=be_rate / 2,
                            traffic_class=TrafficClass.NON_REAL_TIME,
                            rng=rng,
                        )
                    )
            sim = build_simulation(config, RunOptions(extra_sources=extra))
            report = sim.run(20_000)
            rt = report.class_stats(TrafficClass.RT_CONNECTION)
            be = report.class_stats(TrafficClass.BEST_EFFORT)
            nrt = report.class_stats(TrafficClass.NON_REAL_TIME)
            rows.append(
                (
                    be_rate,
                    rt.deadline_miss_ratio,
                    rt.mean_latency_slots,
                    be.deadline_miss_ratio,
                    be.delivered,
                    nrt.delivered,
                    nrt.released,
                )
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "S5: class isolation under rising background load "
        "(RT ~50% guaranteed; BE rate per node per slot)",
        ["BE rate", "RT miss", "RT mean lat", "BE miss",
         "BE delivered", "NRT delivered", "NRT released"],
        rows,
    )
    for row in rows:
        assert row[1] == 0.0, "guaranteed traffic must never miss"
    # RT latency is load-independent to within a slot.
    latencies = [row[2] for row in rows]
    assert max(latencies) - min(latencies) < 1.0
    # Best-effort starts failing only under heavy pressure; NRT underneath
    # saturates first (it only ever moves when both other queues idle).
    assert rows[0][3] == 0.0
    benchmark.extra_info["rt_latency_spread"] = max(latencies) - min(latencies)


def test_s5_nrt_starved_before_be(run_once, benchmark):
    """Strict precedence: under overload the NRT class starves first."""
    n = 8

    def measure():
        rng = np.random.default_rng(11)
        config = ScenarioConfig(
            n_nodes=n, connections=tuple(guaranteed_load(n))
        )
        extra = []
        for node in range(n):
            extra.append(
                PoissonSource(
                    node=node, n_nodes=n, rate_per_slot=0.3,
                    traffic_class=TrafficClass.BEST_EFFORT,
                    rng=rng, relative_deadline_slots=100,
                )
            )
            extra.append(
                PoissonSource(
                    node=node, n_nodes=n, rate_per_slot=0.3,
                    traffic_class=TrafficClass.NON_REAL_TIME, rng=rng,
                )
            )
        sim = build_simulation(config, RunOptions(extra_sources=extra))
        report = sim.run(20_000)
        be = report.class_stats(TrafficClass.BEST_EFFORT)
        nrt = report.class_stats(TrafficClass.NON_REAL_TIME)
        return be, nrt

    be, nrt = run_once(measure)
    be_ratio = be.delivered / be.released
    nrt_ratio = nrt.delivered / nrt.released
    print_table(
        "S5b: delivery ratio under overload (equal BE and NRT offered load)",
        ["class", "released", "delivered", "ratio"],
        [
            ("best-effort", be.released, be.delivered, be_ratio),
            ("non-real-time", nrt.released, nrt.delivered, nrt_ratio),
        ],
    )
    assert be_ratio > nrt_ratio, "BE must outlive NRT under pressure"
    benchmark.extra_info["be_ratio"] = be_ratio
    benchmark.extra_info["nrt_ratio"] = nrt_ratio
