"""Experiment E5/E6 -- Equations (5)/(6): U_max and the EDF admission test.

Sweeps U_max over slot length, ring length, and node count (the design
space of Eq. 6), then validates the Eq. (5) admission boundary against
simulation: sets admitted at the boundary never miss, sets just past the
slot-domain capacity miss.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.core.admission import AdmissionController
from repro.core.priorities import TrafficClass
from repro.core.timing import NetworkTiming
from repro.phy.link import FibreRibbonLink
from repro.ring.topology import RingTopology
from repro.sim.runner import ScenarioConfig, run_scenario
from repro.traffic.periodic import random_connection_set
from repro.traffic.sweeps import scale_connections_to_utilisation


def test_e6_umax_design_space(run_once, benchmark):
    def sweep():
        rows = []
        for n in (4, 8, 16, 32):
            for link_m in (10.0, 100.0, 1000.0):
                for payload in (256, 1024, 4096):
                    t = NetworkTiming(
                        topology=RingTopology.uniform(n, link_m),
                        link=FibreRibbonLink(),
                        slot_payload_bytes=payload,
                    )
                    rows.append((n, link_m, payload, t.u_max))
        return rows

    rows = run_once(sweep)
    print_table(
        "E6: U_max = t_slot / (t_slot + t_handover_max)",
        ["N", "L [m]", "payload [B]", "U_max"],
        rows,
    )
    # Shape checks: U_max falls with ring length and rises with payload.
    by_key = {(n, l, p): u for n, l, p, u in rows}
    assert by_key[(8, 1000.0, 1024)] < by_key[(8, 10.0, 1024)]
    assert by_key[(8, 100.0, 4096)] > by_key[(8, 100.0, 256)]
    benchmark.extra_info["u_max_default"] = by_key[(8, 10.0, 1024)]


def test_e5_admission_boundary_in_simulation(run_once, benchmark):
    """Feasible-by-Eq.(5) sets never miss; overloaded sets do.

    Section 5: the analysis guarantees one message per slot and "the
    benefits of [spatial reuse are] not taken into account" -- so the
    boundary is checked in analysis mode (reuse off), with a reuse-on
    column showing the run-time bonus that softens overload in practice.
    """

    def boundary():
        rows = []
        rng = np.random.default_rng(123)
        base = random_connection_set(
            rng, 8, 12, 0.5, period_range=(20, 200)
        )
        for target_u in (0.3, 0.6, 0.9, 0.99, 1.1, 1.3):
            conns = scale_connections_to_utilisation(base, target_u)
            achieved = sum(c.utilisation for c in conns)
            miss = {}
            for reuse in (False, True):
                config = ScenarioConfig(
                    n_nodes=8, connections=tuple(conns), spatial_reuse=reuse
                )
                report = run_scenario(config, n_slots=30_000)
                rt = report.class_stats(TrafficClass.RT_CONNECTION)
                miss[reuse] = rt.deadline_miss_ratio
            rows.append((target_u, achieved, miss[False], miss[True]))
        return rows

    rows = run_once(boundary)
    print_table(
        "E5: deadline-miss ratio across the admission boundary "
        "(analysis mode vs with spatial reuse)",
        ["target U", "achieved U", "miss (no reuse)", "miss (reuse)"],
        rows,
    )
    for target_u, achieved, miss_analysis, _ in rows:
        if achieved <= 1.0:
            assert miss_analysis == 0, (
                f"feasible set (U={achieved}) missed deadlines"
            )
    assert rows[-1][2] > 0, "overload must produce misses in analysis mode"
    benchmark.extra_info["boundary_points"] = len(rows)


def test_e5_admission_controller_tracks_umax(run_once, benchmark):
    """The controller's accept/reject sequence honours Eq. (5) exactly."""

    def admit():
        timing = NetworkTiming(
            topology=RingTopology.uniform(8, 10.0), link=FibreRibbonLink()
        )
        controller = AdmissionController(timing)
        rng = np.random.default_rng(7)
        candidates = random_connection_set(
            rng, 8, 40, total_utilisation=2.5, period_range=(20, 400)
        )
        accepted = rejected = 0
        for c in candidates:
            if controller.request(c).accepted:
                accepted += 1
            else:
                rejected += 1
        return accepted, rejected, controller.utilisation, controller.u_max

    accepted, rejected, util, u_max = run_once(admit)
    print_table(
        "E5b: admission controller at 2.5x offered utilisation",
        ["accepted", "rejected", "U(Ma)", "U_max"],
        [(accepted, rejected, util, u_max)],
    )
    assert util <= u_max
    assert rejected > 0
    benchmark.extra_info["final_utilisation"] = util
