"""Experiment F4/F5 -- Figures 4 and 5: control packet formats.

Regenerates the field layout tables of both control packets for a range
of ring sizes, round-trips every packet through its exact over-fibre bit
sequence, and reports the control-channel overhead (packet bits per
slot) that the arbitration costs -- the quantity the paper's
"control and data are overlapped in time" argument renders harmless.
"""

from conftest import print_table

from repro.core.timing import NetworkTiming
from repro.phy.link import FibreRibbonLink
from repro.phy.packets import (
    PRIORITY_FIELD_BITS,
    collection_packet_length_bits,
    distribution_packet_length_bits,
    index_field_width,
)
from repro.ring.topology import RingTopology


def test_f4_collection_format(run_once, benchmark):
    def table():
        rows = []
        for n in (2, 4, 8, 16, 32, 64):
            per_request = PRIORITY_FIELD_BITS + 2 * n
            total = collection_packet_length_bits(n)
            assert total == 1 + n * per_request
            rows.append((n, 1, PRIORITY_FIELD_BITS, n, n, per_request, total))
        return rows

    rows = run_once(table)
    print_table(
        "F4: collection packet layout -- start | N x (prio, links, dsts)",
        ["N", "start", "prio bits", "link bits", "dst bits",
         "bits/request", "total bits"],
        rows,
    )
    benchmark.extra_info["n64_bits"] = rows[-1][-1]


def test_f5_distribution_format(run_once, benchmark):
    def table():
        rows = []
        for n in (2, 4, 8, 16, 32, 64):
            total = distribution_packet_length_bits(n)
            rows.append((n, 1, n - 1, index_field_width(n), total))
        return rows

    rows = run_once(table)
    print_table(
        "F5: distribution packet layout -- start | results | hp index",
        ["N", "start", "result bits", "index bits (log2 N)", "total bits"],
        rows,
    )
    # The figure's field widths: N-1 result bits, ceil(log2 N) index bits.
    for n, _, result_bits, index_bits, _ in rows:
        assert result_bits == n - 1
        assert index_bits == max(1, (n - 1).bit_length())
    benchmark.extra_info["n64_bits"] = rows[-1][-1]


def test_f45_control_overhead_fits_slot(run_once, benchmark):
    """Both packets must fit the control channel within one slot -- the
    feasibility behind the Figure 3 overlap, at exact bit counts."""

    def table():
        rows = []
        link = FibreRibbonLink()
        for n in (4, 8, 16, 32):
            timing = NetworkTiming(
                topology=RingTopology.uniform(n, 10.0), link=link
            )
            coll = collection_packet_length_bits(n)
            dist = distribution_packet_length_bits(n)
            slot_bits = int(timing.slot_length_s * link.clock_rate_hz)
            rows.append(
                (
                    n,
                    coll,
                    dist,
                    slot_bits,
                    (coll + dist) / slot_bits,
                )
            )
        return rows

    rows = run_once(table)
    print_table(
        "F4/F5: control bits per slot vs slot capacity (bit-serial channel)",
        ["N", "collection bits", "distribution bits",
         "control bits/slot capacity", "fraction used"],
        rows,
    )
    for n, coll, dist, slot_bits, frac in rows:
        assert coll + dist <= slot_bits, f"N={n}: control exceeds one slot"
    benchmark.extra_info["worst_fraction"] = rows[-1][-1]
