"""Experiment S4 -- runtime admission control dynamics.

Logical real-time connections "may be added and removed from the system
during runtime" (Section 1).  Poisson connection arrivals and departures
drive the admission controller; the bench reports acceptance ratio vs
offered connection load and verifies the running system never misses a
deadline of an *admitted* connection -- even while the set churns.
"""

import numpy as np
from conftest import print_table

from repro.core.admission import AdmissionController
from repro.core.priorities import TrafficClass
from repro.core.protocol import CcrEdfProtocol
from repro.sim.runner import ScenarioConfig, make_timing
from repro.sim.engine import Simulation
from repro.traffic.periodic import ConnectionSource, random_connection_set


def test_s4_acceptance_ratio_vs_offered_load(run_once, benchmark):
    def sweep():
        rows = []
        for offered_u in (0.5, 1.0, 2.0, 4.0):
            rng = np.random.default_rng(int(offered_u * 10))
            timing = make_timing(ScenarioConfig(n_nodes=8))
            controller = AdmissionController(timing)
            candidates = random_connection_set(
                rng, 8, 50, offered_u, period_range=(20, 400)
            )
            accepted = sum(
                1 for c in candidates if controller.request(c).accepted
            )
            rows.append(
                (
                    offered_u,
                    accepted,
                    len(candidates),
                    accepted / len(candidates),
                    controller.utilisation,
                    controller.u_max,
                )
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "S4: admission acceptance vs offered connection load (N=8)",
        ["offered U", "accepted", "offered", "accept ratio",
         "U(Ma)", "U_max"],
        rows,
    )
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios, reverse=True)
    assert rows[0][3] == 1.0, "everything fits at offered U=0.5"
    for row in rows:
        assert row[4] <= row[5]
    benchmark.extra_info["ratios"] = ratios


def test_s4_runtime_churn_never_hurts_admitted(run_once, benchmark):
    """Connections arrive and depart mid-run; admitted traffic stays
    clean throughout."""

    def churn():
        rng = np.random.default_rng(99)
        config = ScenarioConfig(n_nodes=8)
        timing = make_timing(config)
        controller = AdmissionController(timing)
        protocol = CcrEdfProtocol(timing.topology)
        sim = Simulation(timing, protocol, sources=[])

        live: list = []
        events = {"arrivals": 0, "accepted": 0, "departures": 0}
        horizon = 30_000
        while sim.current_slot < horizon:
            sim.step()
            slot = sim.current_slot
            if slot % 500 == 0:
                # One arrival attempt every 500 slots.
                events["arrivals"] += 1
                (cand,) = random_connection_set(
                    rng, 8, 1, 0.2, period_range=(20, 200)
                )
                # Rebase the phase so releases start in the future.
                decision = controller.request(cand)
                if decision.accepted:
                    events["accepted"] += 1
                    sim.sources = sim.sources + (
                        ConnectionSource(cand, active_from=slot + 1),
                    )
                    live.append(cand)
            if slot % 1700 == 0 and live:
                # Occasional departure.
                victim = live.pop(int(rng.integers(len(live))))
                controller.remove(victim.connection_id)
                sim.sources = tuple(
                    s
                    for s in sim.sources
                    if not (
                        isinstance(s, ConnectionSource)
                        and s.connection.connection_id == victim.connection_id
                    )
                )
                events["departures"] += 1
        rt = sim.report.class_stats(TrafficClass.RT_CONNECTION)
        return events, rt, controller

    events, rt, controller = run_once(churn)
    print_table(
        "S4b: 30k-slot churn run (arrive ~every 500 slots, depart ~1700)",
        ["arrivals", "accepted", "departures", "released", "delivered",
         "missed", "final U(Ma)"],
        [(
            events["arrivals"], events["accepted"], events["departures"],
            rt.released, rt.delivered, rt.deadline_missed,
            controller.utilisation,
        )],
    )
    assert rt.deadline_missed == 0
    assert events["accepted"] > 0 and events["departures"] > 0
    assert controller.utilisation <= controller.u_max
    benchmark.extra_info["released"] = rt.released
