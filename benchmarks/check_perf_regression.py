"""Compare two BENCH_perf.json files and fail on slots/sec regressions.

Usage::

    python benchmarks/check_perf_regression.py BASELINE.json CURRENT.json \
        [--tolerance 0.30]

Exit codes: ``0`` = no scenario regressed more than the tolerance (or the
baseline is missing entirely -- the soft-fail first run), ``1`` = at
least one regression, ``2`` = bad invocation.

Scenarios present on only one side are reported but never fail the
check, so adding or renaming a bench does not break CI on its own PR.
Timing noise on shared CI runners is why the default tolerance is a
generous 30%: only genuine hot-path regressions trip it.

Besides the run-over-run comparison, one *within-run* pair from the
CURRENT file is gated tightly: the campaign executor
(``campaign_executor``) against the raw worker batch executing the same
seeded runs (``campaign_raw_batch``), both recorded interleaved by
``bench_perf_simulator.py``.  Shared-runner speed cancels in that ratio,
so the campaign layer's bookkeeping on-cost must stay under
``--campaign-tolerance`` (default 10%).  The pair is soft-skipped when
either scenario is absent (partial bench runs).

A second within-run gate holds the vector engine to its reason for
existing: ``loaded_ring_n8_vector`` must beat ``loaded_ring_n8`` (the
pure-Python oracle on the identical scenario) by at least
``--vector-min-speedup`` (default 10x).  Again a same-file ratio, so
runner speed cancels; soft-skipped when either scenario is absent.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def compare(
    baseline: dict, current: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Return (regressions, notes) comparing slots/sec per scenario."""
    regressions: list[str] = []
    notes: list[str] = []
    for name in sorted(set(baseline) | set(current)):
        if name not in baseline:
            notes.append(f"new scenario (no baseline): {name}")
            continue
        if name not in current:
            notes.append(f"scenario missing from current run: {name}")
            continue
        base = float(baseline[name]["slots_per_s"])
        cur = float(current[name]["slots_per_s"])
        ratio = cur / base if base > 0 else float("inf")
        line = (
            f"{name}: {base:,.0f} -> {cur:,.0f} slots/s "
            f"({(ratio - 1):+.1%})"
        )
        if ratio < 1.0 - tolerance:
            regressions.append(line)
        else:
            notes.append(line)
    return regressions, notes


def campaign_overhead(
    current: dict,
    raw: str = "campaign_raw_batch",
    executor: str = "campaign_executor",
) -> float | None:
    """Fractional slowdown of the campaign executor vs the raw batch,
    from one results file (``None`` when the pair was not recorded).

    Uses the best-round rate when available, like
    ``check_events_overhead.py``: one scheduler hiccup in either side's
    rounds would dominate a mean-based ratio on a shared runner.
    """
    if raw not in current or executor not in current:
        return None
    key = (
        "slots_per_s_best"
        if "slots_per_s_best" in current[raw]
        and "slots_per_s_best" in current[executor]
        else "slots_per_s"
    )
    base = float(current[raw][key])
    with_executor = float(current[executor][key])
    if base <= 0:
        return None
    return 1.0 - with_executor / base


def vector_speedup(
    current: dict,
    oracle: str = "loaded_ring_n8",
    vector: str = "loaded_ring_n8_vector",
) -> float | None:
    """Vector-engine speedup over the oracle on the identical scenario,
    from one results file (``None`` when the pair was not recorded)."""
    if oracle not in current or vector not in current:
        return None
    base = float(current[oracle]["slots_per_s"])
    vec = float(current[vector]["slots_per_s"])
    if base <= 0:
        return None
    return vec / base


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional slowdown per scenario (default 0.30)",
    )
    parser.add_argument(
        "--campaign-tolerance",
        type=float,
        default=0.10,
        help="allowed campaign-executor overhead vs the raw worker batch, "
        "within the current run (default 0.10)",
    )
    parser.add_argument(
        "--vector-min-speedup",
        type=float,
        default=10.0,
        help="required loaded_ring_n8_vector speedup over the oracle's "
        "loaded_ring_n8, within the current run (default 10x)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}: soft pass (first run records one)"
        )
        return 0
    if not args.current.exists():
        print(f"current results not found at {args.current}")
        return 2

    try:
        baseline = json.loads(args.baseline.read_text())
    except json.JSONDecodeError:
        print(f"unreadable baseline at {args.baseline}: soft pass")
        return 0
    current = json.loads(args.current.read_text())
    regressions, notes = compare(baseline, current, args.tolerance)

    for line in notes:
        print(f"  ok   {line}")
    for line in regressions:
        print(f"  FAIL {line}")

    slowdown = campaign_overhead(current)
    if slowdown is None:
        print("campaign overhead pair not recorded; skipping that gate")
    else:
        line = (
            f"campaign executor overhead vs raw batch: {slowdown:+.1%} "
            f"(gate {args.campaign_tolerance:.0%})"
        )
        if slowdown > args.campaign_tolerance:
            print(f"  FAIL {line}")
            regressions.append(line)
        else:
            print(f"  ok   {line}")

    speedup = vector_speedup(current)
    if speedup is None:
        print("vector speedup pair not recorded; skipping that gate")
    else:
        line = (
            f"vector engine speedup vs oracle (loaded_ring_n8): "
            f"{speedup:.1f}x (gate >= {args.vector_min_speedup:.0f}x)"
        )
        if speedup < args.vector_min_speedup:
            print(f"  FAIL {line}")
            regressions.append(line)
        else:
            print(f"  ok   {line}")

    if regressions:
        print(
            f"{len(regressions)} scenario(s) regressed more than "
            f"{args.tolerance:.0%} in slots/sec"
        )
        return 1
    print("no perf regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
