"""Experiment S1 -- deadline-miss ratio vs offered load, all protocols.

The headline comparison of the promised simulation study: CCR-EDF
sustains feasible loads with zero misses; the round-robin-clocked
baselines (upper-EDF hybrid and CC-FPR) suffer priority inversion; TDMA
is deadline-blind.  Run on an asymmetric workload (hot node + background)
where the per-node 1/N guarantee of rotation protocols bites.
"""

from conftest import print_table

from repro.core.connection import LogicalRealTimeConnection
from repro.core.priorities import TrafficClass
from repro.sim.runner import PROTOCOLS, ScenarioConfig, run_scenario


def hot_node_workload(n_nodes, hot_utilisation):
    """One hot node carrying most of the load + light background."""
    period = 10
    hot_size = max(1, round(hot_utilisation * period))
    conns = [
        LogicalRealTimeConnection(
            source=0,
            destinations=frozenset([n_nodes // 2]),
            period_slots=period,
            size_slots=hot_size,
        )
    ]
    # Background: every other node sends 1 slot per 100 to its neighbour.
    for i in range(1, n_nodes):
        conns.append(
            LogicalRealTimeConnection(
                source=i,
                destinations=frozenset([(i + 1) % n_nodes]),
                period_slots=100,
                size_slots=1,
                phase_slots=7 * i,
            )
        )
    return conns


def test_s1_miss_ratio_vs_load(run_once, benchmark):
    n = 8

    def sweep():
        rows = []
        for hot_u in (0.1, 0.2, 0.4, 0.6, 0.8):
            conns = hot_node_workload(n, hot_u)
            total_u = sum(c.utilisation for c in conns)
            miss = {}
            for proto in PROTOCOLS:
                config = ScenarioConfig(
                    n_nodes=n,
                    protocol=proto,
                    connections=tuple(conns),
                    drop_late=True,
                )
                report = run_scenario(config, n_slots=20_000)
                rt = report.class_stats(TrafficClass.RT_CONNECTION)
                miss[proto] = rt.deadline_miss_ratio
            rows.append(
                (hot_u, total_u, miss["ccr-edf"], miss["upper-edf"],
                 miss["ccfpr"], miss["tdma"])
            )
        return rows

    rows = run_once(sweep)
    print_table(
        "S1: deadline-miss ratio vs hot-node load (N=8, asymmetric)",
        ["hot U", "total U", "ccr-edf", "upper-edf", "ccfpr", "tdma"],
        rows,
    )
    # Shape: CCR-EDF clean everywhere; rotation protocols degrade as the
    # hot node's demand exceeds their per-node 1/N guarantee.
    for row in rows:
        assert row[2] == 0.0, "CCR-EDF must not miss on feasible loads"
    assert rows[-1][4] > 0.3, "CC-FPR must collapse at hot U=0.8"
    assert rows[-1][5] > 0.3, "TDMA must collapse at hot U=0.8"
    assert rows[0][4] == 0.0, "CC-FPR handles hot U=0.1 (<= 1/N)"
    benchmark.extra_info["points"] = len(rows)


def test_s1_random_symmetric_loads(run_once, benchmark, bench_jobs, tmp_path):
    """Symmetric random workloads, as a campaign: protocol x load grid
    with replicated random connection sets, sharded across processes and
    aggregated through the campaign report."""
    from repro.campaign import (
        Campaign,
        CampaignReport,
        ResultStore,
        WorkloadSpec,
        run_campaign,
    )

    campaign = Campaign(
        name="s1-symmetric",
        base=ScenarioConfig(n_nodes=8, drop_late=True),
        n_slots=20_000,
        axes={
            "protocol": PROTOCOLS,
            "utilisation": (0.3, 0.5, 0.7, 0.9),
        },
        workload=WorkloadSpec(
            n_connections=16, period_min=20, period_max=200
        ),
        n_replications=2,
        master_seed=2024,
    )
    store = ResultStore(tmp_path / "store")

    def sweep():
        run_campaign(campaign, store, n_jobs=bench_jobs)
        return CampaignReport.from_store(campaign, store)

    report = run_once(sweep)
    assert report.complete
    miss = report.marginals("rt_miss_ratio")
    rows = [
        (target,) + tuple(
            _point_mean(report, proto, target) for proto in PROTOCOLS
        )
        for target in (0.3, 0.5, 0.7, 0.9)
    ]
    print_table(
        "S1b: deadline-miss ratio vs load (N=8, symmetric random campaign)",
        ["total U"] + list(PROTOCOLS),
        rows,
    )
    # CCR-EDF clean on every feasible load, and never worse than any
    # rotation baseline on the protocol marginal.
    for row in rows:
        assert row[1] == 0.0, "CCR-EDF must not miss on feasible loads"
    for proto in PROTOCOLS:
        assert miss["protocol"]["ccr-edf"] <= miss["protocol"][proto]
    benchmark.extra_info["runs"] = campaign.total_runs


def _point_mean(report, protocol, target):
    """Mean RT miss ratio over the replications of one grid point."""
    samples = [
        row["rt_miss_ratio"]
        for row in report.rows
        if row["protocol"] == protocol
        and row["target_utilisation"] == target
    ]
    return sum(samples) / len(samples)
